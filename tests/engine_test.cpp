// Batch-engine tests: determinism across thread counts, canonical-ANF
// cache behaviour (hits on resubmit and on renamed-variable isomorphs,
// no false hits across option fingerprints), error isolation, the worker
// pool's exception capture, LRU eviction, and the JSON reporter.
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <sstream>

#include "anf/parser.hpp"
#include "engine/cache.hpp"
#include "engine/engine.hpp"
#include "engine/pool.hpp"
#include "engine/report_json.hpp"

namespace pd::engine {
namespace {

std::vector<JobSpec> smallBatch() {
    std::vector<JobSpec> specs;
    for (const char* name : {"majority7", "counter8", "adder8"}) {
        JobSpec s;
        s.benchmark = name;
        specs.push_back(std::move(s));
    }
    JobSpec expr;
    expr.name = "maj-expr";
    expr.expressions = {"maj=a*b ^ a*c ^ b*c"};
    specs.push_back(std::move(expr));
    JobSpec dup;  // duplicate of specs[0]: exercised the in-flight dedup
    dup.benchmark = "majority7";
    dup.name = "majority7-again";
    specs.push_back(std::move(dup));
    return specs;
}

/// Everything except timings and cache provenance must be identical
/// between runs, whatever the thread count or hit/miss history.
void expectSameSemantics(const JobResult& a, const JobResult& b) {
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.error, b.error);
    EXPECT_EQ(a.blocks, b.blocks);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.leaders, b.leaders);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.qor.area, b.qor.area);
    EXPECT_EQ(a.qor.delay, b.qor.delay);
    EXPECT_EQ(a.qor.gates, b.qor.gates);
    EXPECT_EQ(a.levels, b.levels);
    EXPECT_EQ(a.interconnect, b.interconnect);
    EXPECT_EQ(a.verification, b.verification);
    EXPECT_EQ(a.vectorsTested, b.vectorsTested);
    EXPECT_EQ(a.exhaustive, b.exhaustive);
    EXPECT_EQ(a.cacheKey, b.cacheKey);
}

TEST(Engine, DeterministicAcrossThreadCounts) {
    const auto specs = smallBatch();
    EngineOptions one;
    one.jobs = 1;
    EngineOptions eight;
    eight.jobs = 8;
    const auto r1 = runBatch(specs, one);
    const auto r8 = runBatch(specs, eight);
    ASSERT_EQ(r1.size(), specs.size());
    ASSERT_EQ(r8.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(r1[i].name);
        EXPECT_TRUE(r1[i].ok) << r1[i].error;
        EXPECT_EQ(r1[i].name, r8[i].name);
        expectSameSemantics(r1[i], r8[i]);
    }
}

TEST(Engine, CacheHitOnResubmittedIdenticalSpec) {
    EngineOptions opt;
    opt.jobs = 2;
    Engine engine(opt);
    JobSpec spec;
    spec.benchmark = "majority7";
    const auto first = engine.runJob(spec);
    ASSERT_TRUE(first.ok) << first.error;
    EXPECT_FALSE(first.cacheHit);

    const auto second = engine.runJob(spec);
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_TRUE(second.cacheHit);
    expectSameSemantics(first, second);

    const auto stats = engine.cacheStats();
    EXPECT_GE(stats.hits, 1u);
    EXPECT_GE(stats.inserts, 1u);
}

TEST(Engine, DuplicateSpecsWithinOneBatchShareOneComputation) {
    EngineOptions opt;
    opt.jobs = 4;
    Engine engine(opt);
    std::vector<JobSpec> specs(4);
    for (auto& s : specs) s.benchmark = "majority7";
    const auto results = engine.runBatch(specs);
    for (const auto& r : results) ASSERT_TRUE(r.ok) << r.error;
    // Exactly one miss computed; the other three were served (in-flight
    // dedup or ready hit, depending on scheduling).
    const auto stats = engine.cacheStats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 3u);
    for (std::size_t i = 1; i < results.size(); ++i)
        expectSameSemantics(results[0], results[i]);
}

TEST(Engine, OptionsFingerprintPreventsFalseHits) {
    EngineOptions opt;
    opt.jobs = 1;
    Engine engine(opt);
    JobSpec k4;
    k4.benchmark = "majority7";
    k4.options.k = 4;
    JobSpec k3 = k4;
    k3.options.k = 3;

    const auto first = engine.runJob(k4);
    const auto second = engine.runJob(k3);
    ASSERT_TRUE(first.ok) << first.error;
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_FALSE(second.cacheHit) << "k=3 must not hit the k=4 entry";
    EXPECT_NE(first.cacheKey, second.cacheKey);

    // And the same options do hit again.
    const auto third = engine.runJob(k3);
    EXPECT_TRUE(third.cacheHit);
}

TEST(Engine, IsomorphicRenamedExpressionsShareOneEntry) {
    EngineOptions opt;
    opt.jobs = 1;
    Engine engine(opt);
    JobSpec f;
    f.name = "f";
    f.expressions = {"f=a*b ^ c*d ^ a*d"};
    JobSpec g;  // same function, different variable names
    g.name = "g";
    g.expressions = {"g=p*q ^ r*s ^ p*s"};
    const auto rf = engine.runJob(f);
    const auto rg = engine.runJob(g);
    ASSERT_TRUE(rf.ok) << rf.error;
    ASSERT_TRUE(rg.ok) << rg.error;
    EXPECT_TRUE(rg.cacheHit) << "renamed isomorph must be served from cache";
    EXPECT_EQ(rf.cacheKey, rg.cacheKey);
    EXPECT_EQ(rg.name, "g") << "display name must come from the spec";
}

TEST(Engine, ErrorIsolation) {
    std::vector<JobSpec> specs(4);
    specs[0].benchmark = "majority7";
    specs[1].name = "bad-parse";
    specs[1].expressions = {"y=((a*"};
    specs[2].name = "bad-bench";
    specs[2].benchmark = "no_such_benchmark";
    specs[3].benchmark = "counter8";

    const auto results = runBatch(specs, [] {
        EngineOptions o;
        o.jobs = 4;
        return o;
    }());
    ASSERT_EQ(results.size(), 4u);
    EXPECT_TRUE(results[0].ok) << results[0].error;
    EXPECT_FALSE(results[1].ok);
    EXPECT_FALSE(results[1].error.empty());
    EXPECT_FALSE(results[2].ok);
    EXPECT_NE(results[2].error.find("no_such_benchmark"), std::string::npos);
    EXPECT_TRUE(results[3].ok) << results[3].error;
}

TEST(Engine, ConflictBudgetCapsIterations) {
    EngineOptions opt;
    opt.jobs = 1;
    opt.conflictBudget = 1;
    JobSpec spec;
    spec.benchmark = "counter8";
    spec.verify = false;  // an unconverged result cannot verify
    const auto r = runBatch({spec}, opt).front();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_LE(r.iterations, 1u);
    EXPECT_FALSE(r.converged);
}

TEST(Engine, KeepMappedServedFromCacheToo) {
    EngineOptions opt;
    opt.jobs = 1;
    Engine engine(opt);
    JobSpec light;
    light.benchmark = "majority7";
    const auto first = engine.runJob(light);
    EXPECT_EQ(first.mapped.numNets(), 0u) << "light results carry no netlist";

    JobSpec full = light;
    full.keepMapped = true;
    const auto second = engine.runJob(full);
    EXPECT_TRUE(second.cacheHit);
    EXPECT_GT(second.mapped.numNets(), 0u)
        << "cache must retain the netlist for keepMapped consumers";
}

TEST(Engine, KeepMappedIsomorphGetsItsOwnPortNames) {
    EngineOptions opt;
    opt.jobs = 1;
    Engine engine(opt);
    JobSpec f;
    f.name = "f";
    f.expressions = {"f=a*b ^ c"};
    f.keepMapped = true;
    JobSpec g;  // isomorphic, but its netlist must say "g", "p", "q", "r"
    g.name = "g";
    g.expressions = {"g=p*q ^ r"};
    g.keepMapped = true;
    const auto rf = engine.runJob(f);
    const auto rg = engine.runJob(g);
    ASSERT_TRUE(rf.ok) << rf.error;
    ASSERT_TRUE(rg.ok) << rg.error;
    ASSERT_EQ(rg.mapped.outputs().size(), 1u);
    EXPECT_EQ(rg.mapped.outputs()[0].name, "g")
        << "a donor netlist with foreign port names must not be served";
    EXPECT_FALSE(rg.cacheHit);
    ASSERT_EQ(rf.mapped.outputs().size(), 1u);
    EXPECT_EQ(rf.mapped.outputs()[0].name, "f");
}

TEST(Signature, DistinguishesOptionsAndFunctions) {
    anf::VarTable vt;
    const std::vector<anf::Anf> f = {anf::parse("a*b ^ c", vt)};
    const std::vector<anf::Anf> g = {anf::parse("a*b ^ a", vt)};
    core::DecomposeOptions k4;
    core::DecomposeOptions k3;
    k3.k = 3;
    EXPECT_NE(canonicalSignature(f, k4, true), canonicalSignature(f, k3, true));
    EXPECT_NE(canonicalSignature(f, k4, true), canonicalSignature(g, k4, true));
    EXPECT_NE(canonicalSignature(f, k4, true),
              canonicalSignature(f, k4, false));
    EXPECT_EQ(canonicalSignature(f, k4, true), canonicalSignature(f, k4, true));
}

TEST(Signature, InvariantUnderRenaming) {
    anf::VarTable vt1;
    const std::vector<anf::Anf> f1 = {anf::parse("a*b ^ b*c", vt1)};
    anf::VarTable vt2;
    const std::vector<anf::Anf> f2 = {anf::parse("x*y ^ y*z", vt2)};
    const core::DecomposeOptions opt;
    EXPECT_EQ(canonicalSignature(f1, opt, true),
              canonicalSignature(f2, opt, true));
}

TEST(Pool, CapturesTaskExceptions) {
    ThreadPool pool(4);
    auto ok = pool.submit([] { return 41 + 1; });
    auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_EQ(ok.get(), 42);
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The pool survives: workers keep serving after a throwing task.
    auto after = pool.submit([] { return 7; });
    EXPECT_EQ(after.get(), 7);
}

TEST(Pool, RunsManyTasksOnAllWorkers) {
    ThreadPool pool(8);
    std::atomic<int> sum{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 200; ++i)
        futures.push_back(pool.submit([&sum] { sum.fetch_add(1); }));
    for (auto& f : futures) f.get();
    EXPECT_EQ(sum.load(), 200);
}

ResultCache::Value makeValue(const std::string& name) {
    auto r = std::make_shared<JobResult>();
    r->name = name;
    r->ok = true;
    return r;
}

TEST(Cache, LruEviction) {
    ResultCache cache(/*capacity=*/2, /*shards=*/1);
    for (const char* key : {"a", "b"}) {
        auto lookup = cache.lookupOrReserve(key);
        auto* reservation = std::get_if<ResultCache::Reservation>(&lookup);
        ASSERT_NE(reservation, nullptr);
        reservation->fulfill(makeValue(key));
    }
    // Touch "a" so "b" is the LRU entry, then insert "c".
    EXPECT_TRUE(std::holds_alternative<ResultCache::Value>(
        cache.lookupOrReserve("a")));
    {
        auto lookup = cache.lookupOrReserve("c");
        auto* reservation = std::get_if<ResultCache::Reservation>(&lookup);
        ASSERT_NE(reservation, nullptr);
        reservation->fulfill(makeValue("c"));
    }
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_TRUE(std::holds_alternative<ResultCache::Value>(
        cache.lookupOrReserve("a")));
    EXPECT_TRUE(std::holds_alternative<ResultCache::Reservation>(
        cache.lookupOrReserve("b")))
        << "b must have been evicted";
}

TEST(Cache, AbandonedReservationIsNotCached) {
    ResultCache cache(4, 1);
    {
        auto lookup = cache.lookupOrReserve("k");
        ASSERT_TRUE(std::holds_alternative<ResultCache::Reservation>(lookup));
        // Reservation destroyed unfulfilled — the computation "threw".
    }
    auto retry = cache.lookupOrReserve("k");
    EXPECT_TRUE(std::holds_alternative<ResultCache::Reservation>(retry))
        << "a failure must not poison the key";
}

TEST(Cache, ZeroCapacityDisables) {
    ResultCache cache(0);
    EXPECT_TRUE(
        std::holds_alternative<std::monostate>(cache.lookupOrReserve("k")));
    EXPECT_EQ(cache.stats().hits, 0u);
}

// Regression: the move constructor used to null only cache_, leaving the
// moved-from object with a live-looking shard_/fulfilled_ over a
// moved-from promise. Moving a reservation before fulfilling — and
// letting the source die, or poking it — must be completely inert.
TEST(Cache, ReservationMovedBeforeFulfillStaysValid) {
    ResultCache cache(4, 1);
    auto lookup = cache.lookupOrReserve("k");
    auto* reservation = std::get_if<ResultCache::Reservation>(&lookup);
    ASSERT_NE(reservation, nullptr);
    {
        ResultCache::Reservation moved(std::move(*reservation));
        // The source must be a no-op for every operation it still
        // exposes: fulfill() on it must not touch the promise or the
        // cache, and its destructor (end of `lookup`'s variant life)
        // must not erase the entry the new owner still holds.
        reservation->fulfill(makeValue("stray"));
        moved.fulfill(makeValue("k"));
    }
    auto hit = cache.lookupOrReserve("k");
    auto* value = std::get_if<ResultCache::Value>(&hit);
    ASSERT_NE(value, nullptr);
    EXPECT_EQ((*value)->name, "k");
    EXPECT_EQ(cache.stats().inserts, 1u);
}

TEST(Cache, ReservationMovedThenSourceDestroyedDoesNotPoison) {
    ResultCache cache(4, 1);
    std::optional<ResultCache::Reservation> keeper;
    {
        auto lookup = cache.lookupOrReserve("k");
        auto* reservation = std::get_if<ResultCache::Reservation>(&lookup);
        ASSERT_NE(reservation, nullptr);
        keeper.emplace(std::move(*reservation));
        // `lookup` (holding the moved-from source) dies here.
    }
    keeper->fulfill(makeValue("k"));
    keeper.reset();
    EXPECT_TRUE(std::holds_alternative<ResultCache::Value>(
        cache.lookupOrReserve("k")));
}

TEST(Cache, SnapshotDrainsReadyEntriesOnly) {
    ResultCache cache(8, 2);
    {
        auto lookup = cache.lookupOrReserve("ready");
        std::get_if<ResultCache::Reservation>(&lookup)->fulfill(
            makeValue("ready"));
    }
    auto inflight = cache.lookupOrReserve("inflight");
    ASSERT_TRUE(
        std::holds_alternative<ResultCache::Reservation>(inflight));
    const auto snap = cache.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].key, "ready");
    EXPECT_EQ(snap[0].value->name, "ready");
    std::get_if<ResultCache::Reservation>(&inflight)->fulfill(
        makeValue("inflight"));
}

TEST(Cache, RestoreMergesWithoutClobberingLiveEntries) {
    ResultCache cache(8, 2);
    {
        auto lookup = cache.lookupOrReserve("k1");
        std::get_if<ResultCache::Reservation>(&lookup)->fulfill(
            makeValue("live"));
    }
    std::vector<ResultCache::SnapshotEntry> entries;
    entries.push_back({"k1", makeValue("stale-from-disk")});
    entries.push_back({"k2", makeValue("new-from-disk")});
    EXPECT_EQ(cache.restore(std::move(entries)), 1u);
    EXPECT_EQ(cache.stats().restored, 1u);
    auto h1 = cache.lookupOrReserve("k1");
    EXPECT_EQ((*std::get_if<ResultCache::Value>(&h1))->name, "live")
        << "a live entry must win over the store";
    auto h2 = cache.lookupOrReserve("k2");
    ASSERT_TRUE(std::holds_alternative<ResultCache::Value>(h2));
    EXPECT_EQ((*std::get_if<ResultCache::Value>(&h2))->name,
              "new-from-disk");
}

TEST(Engine, CacheSourceDistinguishesComputedFromMemory) {
    Engine engine(EngineOptions{});
    JobSpec spec;
    spec.benchmark = "majority7";
    const auto first = engine.runJob(spec);
    ASSERT_TRUE(first.ok) << first.error;
    EXPECT_EQ(first.cacheSource, CacheSource::kComputed);
    const auto second = engine.runJob(spec);
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_EQ(second.cacheSource, CacheSource::kMemory);
}

TEST(Engine, VariableCapacityOverflowIsAPerJobFailure) {
    // A job that outgrows the 256-variable monomial universe must fail as
    // that job — with a capacity message, not a crash — while its batch
    // mates run to completion.
    std::string huge = "y=x0";
    for (int i = 1; i < 300; ++i) huge += " ^ x" + std::to_string(i);
    std::vector<JobSpec> specs(3);
    specs[0].benchmark = "majority7";
    specs[1].name = "too-wide";
    specs[1].expressions = {huge};
    specs[2].benchmark = "counter8";

    const auto results = runBatch(specs, EngineOptions{});
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].ok) << results[0].error;
    EXPECT_FALSE(results[1].ok);
    EXPECT_NE(results[1].error.find("capacity"), std::string::npos)
        << results[1].error;
    EXPECT_TRUE(results[2].ok) << results[2].error;
}

TEST(Engine, MergeBudgetOverrideIsReportedHonestly) {
    // An absurdly small engine-level merge budget must truncate the
    // search (budget_exhausted) yet still produce a valid, verified
    // result — anytime semantics, not failure.
    EngineOptions opt;
    opt.jobs = 1;
    opt.mergeBudget = 1;
    JobSpec spec;
    spec.benchmark = "counter16";
    const auto r = runBatch({spec}, opt).front();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.budgetExhausted);
    EXPECT_TRUE(r.verified());

    // And an effectively unlimited budget reports no truncation.
    EngineOptions loose;
    loose.jobs = 1;
    JobSpec easy;
    easy.benchmark = "majority7";
    const auto ok = runBatch({easy}, loose).front();
    ASSERT_TRUE(ok.ok) << ok.error;
    EXPECT_FALSE(ok.budgetExhausted);
}

TEST(Engine, PhaseTimesCoverTheFlow) {
    EngineOptions opt;
    opt.jobs = 1;
    Engine engine(opt);
    JobSpec spec;
    spec.benchmark = "counter8";
    const auto r = engine.runJob(spec);
    ASSERT_TRUE(r.ok) << r.error;
    const auto& p = r.phases;
    EXPECT_GT(p.decomposeMs, 0.0);
    const double sum = p.decomposeMs + p.synthMs + p.optimizeMs + p.mapMs +
                       p.staMs + p.verifyMs;
    EXPECT_LE(sum, r.wallMs + 1.0) << "phases cannot exceed the job wall";

    // A cache hit re-runs nothing: phases must be zero.
    const auto hit = engine.runJob(spec);
    ASSERT_TRUE(hit.cacheHit);
    EXPECT_EQ(hit.phases.decomposeMs, 0.0);
    EXPECT_EQ(hit.phases.verifyMs, 0.0);
}

void expectSameSatVerify(const JobResult& a, const JobResult& b) {
    EXPECT_EQ(a.satVerify.ran, b.satVerify.ran);
    EXPECT_EQ(a.satVerify.conflicts, b.satVerify.conflicts);
    EXPECT_EQ(a.satVerify.propagations, b.satVerify.propagations);
    EXPECT_EQ(a.satVerify.restarts, b.satVerify.restarts);
    EXPECT_EQ(a.satVerify.learned, b.satVerify.learned);
    EXPECT_EQ(a.satVerify.winner, b.satVerify.winner);
    EXPECT_EQ(a.satVerify.budgetExhausted, b.satVerify.budgetExhausted);
}

TEST(Engine, SatVerifyUpgradesStatusAndIsDeterministic) {
    // verify-threads is pure scheduling: the report — including every
    // portfolio statistic — must be bit-identical at N ∈ {1, 2, 4}.
    JobSpec spec;
    spec.benchmark = "majority7";
    std::vector<JobResult> runs;
    for (const std::size_t threads : {1u, 2u, 4u}) {
        EngineOptions opt;
        opt.jobs = 1;
        opt.cacheCapacity = 0;  // force a fresh compute per run
        opt.verifyThreads = threads;
        const auto r = runBatch({spec}, opt).front();
        ASSERT_TRUE(r.ok) << r.error;
        EXPECT_EQ(r.verification, VerifyStatus::kSat);
        EXPECT_TRUE(r.verified());
        ASSERT_TRUE(r.satVerify.ran);
        EXPECT_EQ(r.satVerify.winner, 0);  // unlimited budget ⇒ canonical
        EXPECT_FALSE(r.satVerify.budgetExhausted);
        EXPECT_GT(r.satVerify.propagations, 0u);
        runs.push_back(r);
    }
    for (std::size_t i = 1; i < runs.size(); ++i) {
        expectSameSemantics(runs[0], runs[i]);
        expectSameSatVerify(runs[0], runs[i]);
    }
}

TEST(Engine, SatVerifyOffByDefaultAndSkippedWithNoVerify) {
    JobSpec spec;
    spec.benchmark = "majority7";
    const auto plain = runBatch({spec}, EngineOptions{}).front();
    ASSERT_TRUE(plain.ok) << plain.error;
    EXPECT_FALSE(plain.satVerify.ran);
    EXPECT_NE(plain.verification, VerifyStatus::kSat);

    EngineOptions opt;
    opt.verifyThreads = 2;
    JobSpec unverified = spec;
    unverified.verify = false;
    const auto r = runBatch({unverified}, opt).front();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.satVerify.ran);
    EXPECT_EQ(r.verification, VerifyStatus::kSkipped);
}

TEST(Engine, SatVerifyBudgetExhaustionNeverFailsTheJob) {
    // A 1-conflict budget cannot refute the miter; the job must stay ok
    // with its simulation verdict intact and the truncation reported.
    EngineOptions opt;
    opt.jobs = 1;
    opt.verifyThreads = 1;
    opt.verifyConflictBudget = 1;
    JobSpec spec;
    spec.benchmark = "mul4";
    const auto r = runBatch({spec}, opt).front();
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_TRUE(r.satVerify.ran);
    if (r.satVerify.budgetExhausted) {
        EXPECT_NE(r.verification, VerifyStatus::kSat);
        EXPECT_NE(r.verification, VerifyStatus::kFailed);
        EXPECT_TRUE(r.verified());  // sim/algebraic verdict survives
        EXPECT_EQ(r.satVerify.winner, -1);
    } else {
        EXPECT_EQ(r.verification, VerifyStatus::kSat);
    }
}

TEST(Engine, SatVerifySurvivesTheCache) {
    EngineOptions opt;
    opt.jobs = 1;
    opt.verifyThreads = 1;
    Engine engine(opt);
    JobSpec spec;
    spec.benchmark = "counter8";
    const auto first = engine.runJob(spec);
    ASSERT_TRUE(first.ok) << first.error;
    EXPECT_EQ(first.verification, VerifyStatus::kSat);
    ASSERT_TRUE(first.satVerify.ran);

    const auto hit = engine.runJob(spec);
    ASSERT_TRUE(hit.cacheHit);
    expectSameSemantics(first, hit);
    expectSameSatVerify(first, hit);
}

TEST(Engine, VerifyFingerprintPolicy) {
    // Searcher count is scheduling — same store works at any N — but
    // enabling SAT verify or changing its budgets changes stored
    // verification fields and must salt the fingerprint.
    EngineOptions off;
    EngineOptions one;
    one.verifyThreads = 1;
    EngineOptions four = one;
    four.verifyThreads = 4;
    EngineOptions budgeted = one;
    budgeted.verifyConflictBudget = 1000;
    EXPECT_EQ(persistFingerprint(one), persistFingerprint(four));
    EXPECT_NE(persistFingerprint(off), persistFingerprint(one));
    EXPECT_NE(persistFingerprint(one), persistFingerprint(budgeted));
}

TEST(ReportJson, SatVerifyBlockOnlyWhenRan) {
    JobResult r;
    r.name = "j";
    r.ok = true;
    std::ostringstream os;
    writeBatchReport(os, EngineOptions{}, std::vector<JobResult>{r},
                     ResultCache::Stats{});
    EXPECT_EQ(os.str().find("\"sat\""), std::string::npos);

    r.satVerify.ran = true;
    r.satVerify.conflicts = 42;
    r.satVerify.winner = 0;
    r.verification = VerifyStatus::kSat;
    std::ostringstream os2;
    writeBatchReport(os2, EngineOptions{}, std::vector<JobResult>{r},
                     ResultCache::Stats{});
    const std::string out = os2.str();
    EXPECT_NE(out.find("\"status\": \"sat\""), std::string::npos);
    EXPECT_NE(out.find("\"conflicts\": 42"), std::string::npos);
    EXPECT_NE(out.find("\"winner\": 0"), std::string::npos);
}

TEST(ReportJson, BudgetAndPhasesInSchema) {
    JobResult r;
    r.name = "j";
    r.ok = true;
    r.budgetExhausted = true;
    r.phases.decomposeMs = 12.5;
    std::ostringstream os;
    writeBatchReport(os, EngineOptions{}, std::vector<JobResult>{r},
                     ResultCache::Stats{});
    const std::string out = os.str();
    EXPECT_NE(out.find("\"budget_exhausted\": true"), std::string::npos);
    EXPECT_NE(out.find("\"phases\""), std::string::npos);
    EXPECT_NE(out.find("\"decompose_ms\": 12.5"), std::string::npos);
}

TEST(ReportJson, EscapesAndNests) {
    JobResult r;
    r.name = "quote\" backslash\\ newline\n";
    r.ok = false;
    r.error = "tab\there";
    std::ostringstream os;
    writeBatchReport(os, EngineOptions{}, std::vector<JobResult>{r},
                     ResultCache::Stats{});
    const std::string out = os.str();
    EXPECT_NE(out.find("\\\""), std::string::npos);
    EXPECT_NE(out.find("\\\\"), std::string::npos);
    EXPECT_NE(out.find("\\n"), std::string::npos);
    EXPECT_NE(out.find("\\t"), std::string::npos);
    EXPECT_NE(out.find("\"schema\": \"pd-batch-report-v1\""),
              std::string::npos);
}

}  // namespace
}  // namespace pd::engine
