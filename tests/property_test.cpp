// Randomized property tests over the whole pipeline: random Reed-Muller
// specifications must decompose to equivalent hierarchies, synthesize to
// equivalent netlists, and survive the optimizer unchanged in function.
#include <gtest/gtest.h>

#include <random>

#include "anf/ops.hpp"
#include "core/decomposer.hpp"
#include "sim/equivalence.hpp"
#include "sim/simulator.hpp"
#include "synth/anf_synth.hpp"
#include "synth/hier_synth.hpp"
#include "synth/mapper.hpp"
#include "synth/opt.hpp"

namespace pd {
namespace {

struct RandomSpec {
    anf::VarTable vt;
    std::vector<anf::Anf> outputs;
    std::vector<std::string> names;
    std::size_t numInputs = 0;
};

RandomSpec makeRandomSpec(std::uint64_t seed, int nVars, int nOutputs,
                          int maxTerms) {
    std::mt19937_64 rng(seed);
    RandomSpec spec;
    spec.numInputs = static_cast<std::size_t>(nVars);
    // Two input "integers" so the grouping heuristic has structure.
    for (int i = 0; i < nVars; ++i) {
        const int integer = i < nVars / 2 ? 0 : 1;
        const int bit = integer == 0 ? i : i - nVars / 2;
        spec.vt.addInput((integer == 0 ? "a" : "b") + std::to_string(bit),
                         integer, bit);
    }
    for (int o = 0; o < nOutputs; ++o) {
        std::vector<anf::Monomial> terms;
        const int n = 1 + static_cast<int>(rng() % static_cast<unsigned>(maxTerms));
        for (int t = 0; t < n; ++t) {
            anf::Monomial m;
            for (int v = 0; v < nVars; ++v)
                if (rng() % 3 == 0) m.insert(static_cast<anf::Var>(v));
            terms.push_back(m);
        }
        spec.outputs.push_back(anf::Anf::fromTerms(std::move(terms)));
        spec.names.push_back("o" + std::to_string(o));
    }
    return spec;
}

class PipelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineProperty, DecompositionIsAlgebraicallyExact) {
    auto spec = makeRandomSpec(GetParam(), 10, 3, 24);
    const auto d =
        core::decompose(spec.vt, spec.outputs, spec.names);
    const auto expanded = d.expandedOutputs(spec.vt);
    ASSERT_EQ(expanded.size(), spec.outputs.size());
    for (std::size_t i = 0; i < expanded.size(); ++i)
        EXPECT_EQ(expanded[i], spec.outputs[i]) << "output " << i;
}

TEST_P(PipelineProperty, SynthesizedHierarchyMatchesFlatSynthesis) {
    auto spec = makeRandomSpec(GetParam() ^ 0x5555, 9, 2, 20);
    const auto flat = synth::synthAnfOutputs(spec.outputs, spec.names, spec.vt);
    const auto d = core::decompose(spec.vt, spec.outputs, spec.names);
    const auto hier = synth::synthDecomposition(d, spec.vt);

    sim::Simulator s1(flat);
    sim::Simulator s2(hier);
    std::mt19937_64 rng(GetParam());
    for (int batch = 0; batch < 16; ++batch) {
        std::vector<std::uint64_t> words(spec.numInputs);
        for (auto& w : words) w = rng();
        const auto o1 = s1.run(words);
        const auto o2 = s2.run(words);
        ASSERT_EQ(o1.size(), o2.size());
        for (std::size_t i = 0; i < o1.size(); ++i)
            EXPECT_EQ(o1[i], o2[i]) << "batch " << batch << " output " << i;
    }
}

TEST_P(PipelineProperty, OptimizerAndMapperPreserveFunction) {
    auto spec = makeRandomSpec(GetParam() ^ 0xaaaa, 8, 2, 16);
    const auto flat = synth::synthAnfOutputs(spec.outputs, spec.names, spec.vt);
    const auto opt = synth::optimize(flat);
    const auto mapped =
        synth::techMap(opt, synth::CellLibrary::umc130());

    sim::Simulator s1(flat);
    sim::Simulator s2(mapped);
    std::mt19937_64 rng(GetParam() * 7 + 1);
    for (int batch = 0; batch < 16; ++batch) {
        std::vector<std::uint64_t> words(spec.numInputs);
        for (auto& w : words) w = rng();
        const auto o1 = s1.run(words);
        const auto o2 = s2.run(words);
        for (std::size_t i = 0; i < o1.size(); ++i)
            EXPECT_EQ(o1[i], o2[i]);
    }
}

TEST_P(PipelineProperty, AblationVariantsAllExact) {
    // Every combination of feature switches must stay algebraically exact.
    auto spec = makeRandomSpec(GetParam() ^ 0x1234, 8, 2, 16);
    for (int mask = 0; mask < 8; ++mask) {
        core::DecomposeOptions opt;
        opt.useIdentities = mask & 1;
        opt.useNullspaceMerging = mask & 2;
        opt.useSizeReduction = mask & 4;
        anf::VarTable vt = spec.vt;  // fresh var table per run
        const auto d = core::decompose(vt, spec.outputs, spec.names, opt);
        const auto expanded = d.expandedOutputs(vt);
        for (std::size_t i = 0; i < expanded.size(); ++i)
            EXPECT_EQ(expanded[i], spec.outputs[i])
                << "mask " << mask << " output " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u,
                                           606u, 707u, 808u));

}  // namespace
}  // namespace pd
