// Tests for the Verilog writer and the BLIF writer/reader: syntax checks,
// functional round-trips (simulation + SAT equivalence), and parser error
// handling.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "io/blif.hpp"
#include "io/verilog.hpp"
#include "netlist/builder.hpp"
#include "sat/equiv.hpp"
#include "sim/simulator.hpp"

namespace pd {
namespace {

netlist::Netlist sampleCircuit() {
    netlist::Netlist nl;
    netlist::Builder b(nl);
    const auto a = b.input("a");
    const auto x = b.input("x");
    const auto y = b.input("y");
    const auto g1 = b.mkAnd(a, x);
    const auto g2 = b.mkXor(g1, y);
    const auto g3 = b.mkMux(a, g2, b.mkNot(x));
    nl.markOutput("f", g3);
    nl.markOutput("g", b.mkOr(g1, g2));
    return nl;
}

netlist::Netlist adder(int width) {
    netlist::Netlist nl;
    netlist::Builder b(nl);
    std::vector<netlist::NetId> as, bs;
    for (int i = 0; i < width; ++i)
        as.push_back(b.input("a" + std::to_string(i)));
    for (int i = 0; i < width; ++i)
        bs.push_back(b.input("b" + std::to_string(i)));
    netlist::NetId carry = b.constant(false);
    for (int i = 0; i < width; ++i) {
        const auto fa = b.fullAdder(as[i], bs[i], carry);
        nl.markOutput("s" + std::to_string(i), fa.sum);
        carry = fa.carry;
    }
    nl.markOutput("cout", carry);
    return nl;
}

// ---------------------------------------------------------------------------
// Verilog writer
// ---------------------------------------------------------------------------

TEST(VerilogWriter, ContainsModuleAndPorts) {
    const auto text = io::toVerilog(sampleCircuit());
    EXPECT_NE(text.find("module pd_circuit"), std::string::npos);
    EXPECT_NE(text.find("input a;"), std::string::npos);
    EXPECT_NE(text.find("output f;"), std::string::npos);
    EXPECT_NE(text.find("output g;"), std::string::npos);
    EXPECT_NE(text.find("endmodule"), std::string::npos);
}

TEST(VerilogWriter, CustomModuleName) {
    io::VerilogOptions opt;
    opt.moduleName = "lzd16";
    const auto text = io::toVerilog(sampleCircuit(), opt);
    EXPECT_NE(text.find("module lzd16"), std::string::npos);
}

TEST(VerilogWriter, PrimitiveMode) {
    io::VerilogOptions opt;
    opt.usePrimitives = true;
    const auto text = io::toVerilog(sampleCircuit(), opt);
    EXPECT_NE(text.find("and g"), std::string::npos);
    EXPECT_NE(text.find("xor g"), std::string::npos);
}

TEST(VerilogWriter, SanitizesAwkwardNames) {
    netlist::Netlist nl;
    netlist::Builder b(nl);
    const auto in = b.input("a[3]");
    nl.markOutput("out.bit", b.mkNot(in));
    const auto text = io::toVerilog(nl);
    // The raw bracketed name must not appear as an identifier declaration.
    EXPECT_EQ(text.find("input a[3];"), std::string::npos);
    EXPECT_NE(text.find("endmodule"), std::string::npos);
}

TEST(VerilogWriter, EveryInternalNetDeclared) {
    const auto nl = adder(4);
    const auto text = io::toVerilog(nl);
    // Each sum output must be assigned exactly once.
    for (int i = 0; i < 4; ++i) {
        const std::string port = "s" + std::to_string(i);
        EXPECT_NE(text.find("output " + port + ";"), std::string::npos);
    }
}

// ---------------------------------------------------------------------------
// BLIF round trip
// ---------------------------------------------------------------------------

void expectFunctionalRoundTrip(const netlist::Netlist& nl) {
    const auto text = io::toBlif(nl);
    const auto back = io::blifFromString(text);

    ASSERT_EQ(back.inputs().size(), nl.inputs().size());
    ASSERT_EQ(back.outputs().size(), nl.outputs().size());

    // Random simulation agreement.
    sim::Simulator s1(nl);
    sim::Simulator s2(back);
    std::mt19937_64 rng(42);
    for (int batch = 0; batch < 32; ++batch) {
        std::vector<std::uint64_t> words(nl.inputs().size());
        for (auto& w : words) w = rng();
        const auto o1 = s1.run(words);
        const auto o2 = s2.run(words);
        ASSERT_EQ(o1.size(), o2.size());
        for (std::size_t i = 0; i < o1.size(); ++i) EXPECT_EQ(o1[i], o2[i]);
    }

    // Formal agreement.
    const auto equiv = sat::checkEquivalentSat(nl, back);
    EXPECT_EQ(equiv.status, sat::EquivCheckResult::Status::kEquivalent);
}

TEST(BlifRoundTrip, SampleCircuit) { expectFunctionalRoundTrip(sampleCircuit()); }

TEST(BlifRoundTrip, Adder8) { expectFunctionalRoundTrip(adder(8)); }

TEST(BlifRoundTrip, ConstantsAndBuffers) {
    netlist::Netlist nl;
    netlist::Builder b(nl);
    (void)b.input("unused");
    nl.markOutput("zero", b.constant(false));
    nl.markOutput("one", b.constant(true));
    expectFunctionalRoundTrip(nl);
}

TEST(BlifRoundTrip, AllTwoInputGateTypes) {
    netlist::Netlist nl;
    netlist::Builder b(nl);
    const auto a = b.input("a");
    const auto c = b.input("b");
    // Build the gates directly (the Builder normalizes some types away, so
    // use the raw netlist API for full coverage).
    nl.markOutput("and", nl.addGate(netlist::GateType::kAnd, a, c));
    nl.markOutput("nand", nl.addGate(netlist::GateType::kNand, a, c));
    nl.markOutput("or", nl.addGate(netlist::GateType::kOr, a, c));
    nl.markOutput("nor", nl.addGate(netlist::GateType::kNor, a, c));
    nl.markOutput("xor", nl.addGate(netlist::GateType::kXor, a, c));
    nl.markOutput("xnor", nl.addGate(netlist::GateType::kXnor, a, c));
    nl.markOutput("buf", nl.addGate(netlist::GateType::kBuf, a));
    nl.markOutput("not", nl.addGate(netlist::GateType::kNot, a));
    expectFunctionalRoundTrip(nl);
}

// ---------------------------------------------------------------------------
// BLIF reader on hand-written sources
// ---------------------------------------------------------------------------

TEST(BlifReader, ParsesMinimalModel) {
    const auto nl = io::blifFromString(
        ".model top\n"
        ".inputs a b\n"
        ".outputs y\n"
        ".names a b y\n"
        "11 1\n"
        ".end\n");
    ASSERT_EQ(nl.inputs().size(), 2u);
    ASSERT_EQ(nl.outputs().size(), 1u);
    sim::Simulator s(nl);
    const std::vector<std::uint64_t> both{~0ull, ~0ull};
    const std::vector<std::uint64_t> onlyA{~0ull, 0ull};
    EXPECT_EQ(s.run(both)[0], ~0ull);
    EXPECT_EQ(s.run(onlyA)[0], 0ull);
}

TEST(BlifReader, OffsetCoverComplementsFunction) {
    // Rows with output 0 describe the OFF-set: y = NOT(a AND b).
    const auto nl = io::blifFromString(
        ".model top\n.inputs a b\n.outputs y\n"
        ".names a b y\n11 0\n.end\n");
    sim::Simulator s(nl);
    const std::vector<std::uint64_t> both{~0ull, ~0ull};
    const std::vector<std::uint64_t> neither{0ull, 0ull};
    EXPECT_EQ(s.run(both)[0], 0ull);
    EXPECT_EQ(s.run(neither)[0], ~0ull);
}

TEST(BlifReader, CoversMayAppearOutOfOrder) {
    const auto nl = io::blifFromString(
        ".model top\n.inputs a\n.outputs y\n"
        ".names t y\n1 1\n"   // y = t, defined before t
        ".names a t\n0 1\n"   // t = NOT a
        ".end\n");
    sim::Simulator s(nl);
    const std::vector<std::uint64_t> zero{0ull};
    EXPECT_EQ(s.run(zero)[0], ~0ull);
}

TEST(BlifReader, HandlesContinuationsAndComments) {
    const auto nl = io::blifFromString(
        ".model top # comment\n"
        ".inputs a \\\n b\n"
        ".outputs y\n"
        ".names a b y # and gate\n"
        "11 1\n"
        ".end\n");
    EXPECT_EQ(nl.inputs().size(), 2u);
}

TEST(BlifReader, ConstantCovers) {
    const auto nl = io::blifFromString(
        ".model top\n.inputs a\n.outputs z o\n"
        ".names z\n"       // empty cover: constant 0
        ".names o\n1\n"    // constant 1
        ".end\n");
    sim::Simulator s(nl);
    const std::vector<std::uint64_t> zero{0ull};
    EXPECT_EQ(s.run(zero)[0], 0ull);
    EXPECT_EQ(s.run(zero)[1], ~0ull);
}

TEST(BlifReader, RejectsCycle) {
    EXPECT_THROW((void)io::blifFromString(".model t\n.inputs a\n.outputs y\n"
                                          ".names y y2\n1 1\n"
                                          ".names y2 y\n1 1\n.end\n"),
                 pd::Error);
}

TEST(BlifReader, RejectsUndrivenSignal) {
    EXPECT_THROW(
        (void)io::blifFromString(".model t\n.inputs a\n.outputs y\n"
                                 ".names ghost y\n1 1\n.end\n"),
        pd::Error);
}

TEST(BlifReader, RejectsDoubleDefinition) {
    EXPECT_THROW((void)io::blifFromString(".model t\n.inputs a\n.outputs y\n"
                                          ".names a y\n1 1\n"
                                          ".names a y\n0 1\n.end\n"),
                 pd::Error);
}

TEST(BlifReader, RejectsRowWidthMismatch) {
    EXPECT_THROW((void)io::blifFromString(".model t\n.inputs a b\n.outputs y\n"
                                          ".names a b y\n111 1\n.end\n"),
                 pd::Error);
}

TEST(BlifReader, RejectsMixedOnOffRows) {
    EXPECT_THROW((void)io::blifFromString(".model t\n.inputs a b\n.outputs y\n"
                                          ".names a b y\n11 1\n00 0\n.end\n"),
                 pd::Error);
}

TEST(BlifReader, RejectsLatch) {
    EXPECT_THROW((void)io::blifFromString(".model t\n.inputs a\n.outputs y\n"
                                          ".latch a y re clk 0\n.end\n"),
                 pd::Error);
}

TEST(BlifReader, RejectsUnknownDirective) {
    EXPECT_THROW((void)io::blifFromString(".model t\n.gobbledygook\n.end\n"),
                 pd::Error);
}

TEST(BlifReader, RejectsBadCoverCharacter) {
    EXPECT_THROW((void)io::blifFromString(".model t\n.inputs a\n.outputs y\n"
                                          ".names a y\n2 1\n.end\n"),
                 pd::Error);
}

TEST(BlifReader, RejectsMissingModel) {
    EXPECT_THROW((void)io::blifFromString(".inputs a\n.outputs y\n"
                                          ".names a y\n1 1\n.end\n"),
                 pd::Error);
}

TEST(BlifReader, InputWithCoverRejected) {
    EXPECT_THROW((void)io::blifFromString(".model t\n.inputs a\n.outputs y\n"
                                          ".names a\n1\n"
                                          ".names a y\n1 1\n.end\n"),
                 pd::Error);
}

}  // namespace
}  // namespace pd
