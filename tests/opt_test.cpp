// Optimizer pass tests: function preservation, dead-logic removal, chain
// balancing.
#include <gtest/gtest.h>

#include <random>

#include "netlist/builder.hpp"
#include "netlist/stats.hpp"
#include "sim/equivalence.hpp"
#include "sim/simulator.hpp"
#include "synth/opt.hpp"

namespace pd::synth {
namespace {

using netlist::Builder;
using netlist::GateType;
using netlist::Netlist;
using netlist::NetId;

TEST(Optimize, RemovesDeadLogic) {
    Netlist nl;
    Builder b(nl);
    const NetId a = b.input("a0");
    const NetId x = b.input("b0");
    const NetId used = b.mkAnd(a, x);
    (void)b.mkOr(a, x);  // dead
    (void)b.mkXor(a, x);  // dead
    nl.markOutput("y", used);
    const auto opt = optimize(nl);
    EXPECT_EQ(opt.numLogicGates(), 1u);
}

TEST(Optimize, BalancesLongChains) {
    // A 16-input AND chain (depth 15) becomes a depth-4 tree.
    Netlist nl;
    Builder b(nl);
    NetId acc = b.input("a0");
    for (int i = 1; i < 16; ++i) acc = b.mkAnd(acc, b.input("a" + std::to_string(i)));
    nl.markOutput("y", acc);
    EXPECT_EQ(netlist::computeStats(nl).levels, 15u);
    const auto opt = optimize(nl);
    EXPECT_EQ(netlist::computeStats(opt).levels, 4u);
    const std::vector<sim::PortLayout> ports{{"a", 16}};
    const auto res = sim::checkAgainstReference(
        opt, ports, {"y"}, [](std::span<const std::uint64_t> v) {
            return v[0] == 0xffffu ? 1u : 0u;
        });
    EXPECT_TRUE(res.equivalent) << res.message;
}

TEST(Optimize, BalancePreservesSharedSubtrees) {
    // Shared internal node with fanout 2 must not be duplicated blindly.
    Netlist nl;
    Builder b(nl);
    const NetId a = b.input("a0");
    const NetId x = b.input("b0");
    const NetId c = b.input("c0");
    const NetId shared = b.mkAnd(a, x);
    nl.markOutput("y1", b.mkAnd(shared, c));
    nl.markOutput("y2", shared);
    const auto opt = optimize(nl);
    EXPECT_LE(opt.numLogicGates(), 2u);
}

TEST(Optimize, ConstantsPropagate) {
    Netlist nl;
    const auto a = nl.addInput("a0");
    const auto c1 = nl.addGate(GateType::kConst1);
    const auto x = nl.addGate(GateType::kAnd, a, c1);  // = a
    const auto y = nl.addGate(GateType::kXor, x, c1);  // = ~a
    const auto z = nl.addGate(GateType::kNot, y);      // = a
    nl.markOutput("y", z);
    const auto opt = optimize(nl);
    EXPECT_EQ(opt.numLogicGates(), 0u);
    const std::vector<sim::PortLayout> ports{{"a", 1}};
    const auto res = sim::checkAgainstReference(
        opt, ports, {"y"},
        [](std::span<const std::uint64_t> v) { return v[0]; });
    EXPECT_TRUE(res.equivalent) << res.message;
}

TEST(Optimize, RandomNetlistsPreserveFunction) {
    // Property: optimize() never changes the function of random netlists.
    std::mt19937_64 rng(2024);
    for (int trial = 0; trial < 20; ++trial) {
        Netlist nl;
        Builder b(nl);
        std::vector<NetId> pool;
        for (int i = 0; i < 6; ++i) pool.push_back(b.input("a" + std::to_string(i)));
        for (int g = 0; g < 40; ++g) {
            const NetId x = pool[rng() % pool.size()];
            const NetId y = pool[rng() % pool.size()];
            switch (rng() % 5) {
                case 0: pool.push_back(b.mkAnd(x, y)); break;
                case 1: pool.push_back(b.mkOr(x, y)); break;
                case 2: pool.push_back(b.mkXor(x, y)); break;
                case 3: pool.push_back(b.mkNot(x)); break;
                default:
                    pool.push_back(b.mkMux(x, y, pool[rng() % pool.size()]));
            }
        }
        nl.markOutput("y", pool.back());
        const auto opt = optimize(nl);

        // Compare outputs on exhaustive 64 patterns via both netlists.
        sim::Simulator s1(nl);
        sim::Simulator s2(opt);
        std::vector<std::uint64_t> words(6);
        for (std::size_t t = 0; t < 64; ++t)
            for (std::size_t i = 0; i < 6; ++i)
                if ((t >> i) & 1u) words[i] |= std::uint64_t{1} << t;
        EXPECT_EQ(s1.run(words)[0], s2.run(words)[0]) << "trial " << trial;
    }
}

TEST(Optimize, NoBalanceOptionRespected) {
    Netlist nl;
    Builder b(nl);
    NetId acc = b.input("a0");
    for (int i = 1; i < 8; ++i) acc = b.mkAnd(acc, b.input("a" + std::to_string(i)));
    nl.markOutput("y", acc);
    const auto opt = optimize(nl, {.balanceTrees = false, .rounds = 1});
    EXPECT_EQ(netlist::computeStats(opt).levels, 7u);
}

}  // namespace
}  // namespace pd::synth
