// Persistent-cache tests: byte-level format round-trips, the store's
// loud rejection of every corruption class (truncation, bit flips,
// future versions, foreign fingerprints) as a clean cold start, engine
// warm-start/flush end-to-end, and a concurrent save-while-computing
// hammer. All failure paths must neither crash nor serve a wrong
// answer — a bad file is equivalent to no file.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "engine/engine.hpp"
#include "engine/persist/format.hpp"
#include "engine/persist/serialize.hpp"
#include "engine/persist/store.hpp"
#include "engine/shard/coordinator.hpp"
#include "util/error.hpp"
#include "util/fault/fault.hpp"

namespace pd::engine::persist {
namespace {

/// Unique-per-test temp path, removed on scope exit.
class TempFile {
public:
    explicit TempFile(const std::string& tag)
        : path_(std::string(::testing::TempDir()) + "pd_persist_" + tag +
                "_" + std::to_string(::getpid()) + ".pdc") {
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }
    [[nodiscard]] const std::string& path() const { return path_; }

private:
    std::string path_;
};

[[nodiscard]] std::string readFile(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    return std::move(buf).str();
}

void writeFile(const std::string& path, const std::string& bytes) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A representative result with a real netlist: x = a&b, y = x^c.
[[nodiscard]] JobResult sampleResult() {
    JobResult r;
    r.ok = true;
    r.blocks = 3;
    r.iterations = 5;
    r.leaders = 4;
    r.converged = true;
    r.qor.area = 123.5;
    r.qor.delay = 0.875;
    r.qor.gates = 2;
    r.levels = 2;
    r.interconnect = 4;
    r.verification = VerifyStatus::kSat;
    r.vectorsTested = 8;
    r.exhaustive = true;
    r.satVerify.ran = true;
    r.satVerify.conflicts = 17;
    r.satVerify.propagations = 512;
    r.satVerify.restarts = 1;
    r.satVerify.learned = 9;
    r.satVerify.winner = 2;
    r.satVerify.budgetExhausted = false;
    netlist::Netlist nl;
    const auto a = nl.addInput("a");
    const auto b = nl.addInput("b");
    const auto c = nl.addInput("c");
    const auto x = nl.addGate(netlist::GateType::kAnd, a, b);
    const auto y = nl.addGate(netlist::GateType::kXor, x, c);
    nl.markOutput("x", x);
    nl.markOutput("y", y);
    r.mapped = std::move(nl);
    return r;
}

void expectSameResult(const JobResult& a, const JobResult& b) {
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.error, b.error);
    EXPECT_EQ(a.blocks, b.blocks);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.leaders, b.leaders);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.qor.area, b.qor.area);
    EXPECT_EQ(a.qor.delay, b.qor.delay);
    EXPECT_EQ(a.qor.gates, b.qor.gates);
    EXPECT_EQ(a.levels, b.levels);
    EXPECT_EQ(a.interconnect, b.interconnect);
    EXPECT_EQ(a.verification, b.verification);
    EXPECT_EQ(a.vectorsTested, b.vectorsTested);
    EXPECT_EQ(a.exhaustive, b.exhaustive);
    EXPECT_EQ(a.satVerify.ran, b.satVerify.ran);
    EXPECT_EQ(a.satVerify.conflicts, b.satVerify.conflicts);
    EXPECT_EQ(a.satVerify.propagations, b.satVerify.propagations);
    EXPECT_EQ(a.satVerify.restarts, b.satVerify.restarts);
    EXPECT_EQ(a.satVerify.learned, b.satVerify.learned);
    EXPECT_EQ(a.satVerify.winner, b.satVerify.winner);
    EXPECT_EQ(a.satVerify.budgetExhausted, b.satVerify.budgetExhausted);
    ASSERT_EQ(a.mapped.numNets(), b.mapped.numNets());
    for (netlist::NetId id = 0; id < a.mapped.numNets(); ++id) {
        EXPECT_EQ(a.mapped.gate(id).type, b.mapped.gate(id).type);
        EXPECT_EQ(a.mapped.gate(id).in, b.mapped.gate(id).in);
    }
    ASSERT_EQ(a.mapped.inputs().size(), b.mapped.inputs().size());
    for (std::size_t i = 0; i < a.mapped.inputs().size(); ++i) {
        EXPECT_EQ(a.mapped.inputs()[i], b.mapped.inputs()[i]);
        EXPECT_EQ(a.mapped.inputName(i), b.mapped.inputName(i));
    }
    ASSERT_EQ(a.mapped.outputs().size(), b.mapped.outputs().size());
    for (std::size_t i = 0; i < a.mapped.outputs().size(); ++i) {
        EXPECT_EQ(a.mapped.outputs()[i].name, b.mapped.outputs()[i].name);
        EXPECT_EQ(a.mapped.outputs()[i].net, b.mapped.outputs()[i].net);
    }
}

TEST(PersistFormat, IntegerAndStringRoundTrip) {
    std::string bytes;
    ByteWriter w(bytes);
    w.u8(0xab);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefull);
    w.f64(-1234.56789);
    using namespace std::string_view_literals;
    w.str("hello\0world"sv);  // embedded NUL must survive
    ByteReader r(bytes);
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.f64(), -1234.56789);
    EXPECT_EQ(r.str(), "hello\0world"sv);
    EXPECT_TRUE(r.done());
}

TEST(PersistFormat, LittleEndianOnTheWire) {
    std::string bytes;
    ByteWriter w(bytes);
    w.u32(0x04030201u);
    ASSERT_EQ(bytes.size(), 4u);
    EXPECT_EQ(bytes[0], 1);
    EXPECT_EQ(bytes[1], 2);
    EXPECT_EQ(bytes[2], 3);
    EXPECT_EQ(bytes[3], 4);
}

TEST(PersistFormat, ReaderThrowsOnOverrun) {
    std::string bytes;
    ByteWriter w(bytes);
    w.u32(7);
    ByteReader r(bytes);
    (void)r.u32();
    EXPECT_THROW((void)r.u8(), pd::Error);
    // A length prefix larger than the buffer must throw, not allocate.
    std::string lie;
    ByteWriter w2(lie);
    w2.u32(0xffffffffu);
    ByteReader r2(lie);
    EXPECT_THROW((void)r2.str(), pd::Error);
}

TEST(PersistSerialize, JobResultRoundTrip) {
    const JobResult r = sampleResult();
    std::string payload;
    serializeJobResult(r, payload);
    const auto back = deserializeJobResult(payload);
    ASSERT_TRUE(back);
    expectSameResult(r, *back);
    // Disk provenance is stamped at decode time.
    EXPECT_EQ(back->cacheSource, CacheSource::kDisk);
}

TEST(PersistSerialize, RejectsCorruptNetlist) {
    const JobResult r = sampleResult();
    std::string payload;
    serializeJobResult(r, payload);
    // Any single-byte corruption must decode to an error or to a value —
    // never crash. (Checksums catch these in the full store; this
    // exercises the decoder's own defenses.)
    for (std::size_t i = 0; i < payload.size(); ++i) {
        std::string bad = payload;
        bad[i] = static_cast<char>(bad[i] ^ 0x5a);
        try {
            (void)deserializeJobResult(bad);
        } catch (const pd::Error&) {
            // expected for most positions
        }
    }
}

TEST(PersistStore, SaveLoadRoundTrip) {
    TempFile file("roundtrip");
    const JobResult r = sampleResult();
    std::vector<StoreEntry> entries;
    entries.push_back(
        {"sig-A", std::make_shared<const JobResult>(r)});
    entries.push_back(
        {"sig-B", std::make_shared<const JobResult>(sampleResult())});
    std::string error;
    ASSERT_TRUE(CacheStore::save(file.path(), "fp1", entries, &error))
        << error;

    const auto loaded = CacheStore::load(file.path(), "fp1");
    ASSERT_TRUE(loaded.ok()) << loaded.detail;
    ASSERT_EQ(loaded.entries.size(), 2u);
    EXPECT_EQ(loaded.entries[0].key, "sig-A");
    EXPECT_EQ(loaded.entries[1].key, "sig-B");
    expectSameResult(r, *loaded.entries[0].result);
}

TEST(PersistStore, MissingFileIsACleanColdStart) {
    const auto loaded = CacheStore::load("/nonexistent/dir/none.pdc", "fp");
    EXPECT_EQ(loaded.status, LoadResult::Status::kNoFile);
    EXPECT_TRUE(loaded.entries.empty());
}

TEST(PersistStore, RejectsTruncatedFile) {
    TempFile file("truncated");
    std::vector<StoreEntry> entries{
        {"sig", std::make_shared<const JobResult>(sampleResult())}};
    ASSERT_TRUE(CacheStore::save(file.path(), "fp", entries));
    const std::string bytes = readFile(file.path());
    ASSERT_GT(bytes.size(), 16u);
    // Every truncation point must reject cleanly, never crash.
    for (const std::size_t keep :
         {bytes.size() - 1, bytes.size() / 2, std::size_t{13},
          std::size_t{7}, std::size_t{0}}) {
        writeFile(file.path(), bytes.substr(0, keep));
        const auto loaded = CacheStore::load(file.path(), "fp");
        EXPECT_FALSE(loaded.ok()) << "kept " << keep << " bytes";
        EXPECT_TRUE(loaded.entries.empty());
    }
}

TEST(PersistStore, RejectsFlippedChecksumByte) {
    TempFile file("checksum");
    std::vector<StoreEntry> entries{
        {"sig", std::make_shared<const JobResult>(sampleResult())}};
    ASSERT_TRUE(CacheStore::save(file.path(), "fp", entries));
    const std::string bytes = readFile(file.path());
    // Flip one byte in every position after the header region; each must
    // be caught by the checksum (or structural validation) as kCorrupt.
    std::size_t rejected = 0;
    for (std::size_t i = kMagic.size() + 4; i < bytes.size(); ++i) {
        std::string bad = bytes;
        bad[i] = static_cast<char>(bad[i] ^ 0x01);
        writeFile(file.path(), bad);
        const auto loaded = CacheStore::load(file.path(), "fp");
        if (!loaded.ok()) ++rejected;
    }
    // All positions are covered by the fingerprint check, length
    // prefixes, payload checksum or trailing-byte detection.
    EXPECT_EQ(rejected, bytes.size() - kMagic.size() - 4);
}

TEST(PersistStore, RejectsOtherFormatVersions) {
    TempFile file("version");
    std::vector<StoreEntry> entries{
        {"sig", std::make_shared<const JobResult>(sampleResult())}};
    ASSERT_TRUE(CacheStore::save(file.path(), "fp", entries));
    std::string bytes = readFile(file.path());
    const auto probe = [&](std::uint8_t version) {
        std::string mutated = bytes;
        mutated[kMagic.size()] = static_cast<char>(version);  // u32 LE
        writeFile(file.path(), mutated);
        return CacheStore::load(file.path(), "fp");
    };
    // A past version (e.g. a v1 store inherited by CI) and a future one
    // must both be rejected loudly as bad-version, never decoded.
    for (const std::uint8_t v : {std::uint8_t{1}, std::uint8_t{99}}) {
        const auto loaded = probe(v);
        EXPECT_EQ(loaded.status, LoadResult::Status::kBadVersion);
        EXPECT_NE(loaded.detail.find("version " + std::to_string(v)),
                  std::string::npos)
            << loaded.detail;
    }
}

TEST(PersistStore, RejectsBadMagic) {
    TempFile file("magic");
    writeFile(file.path(), "this is not a cache store at all");
    const auto loaded = CacheStore::load(file.path(), "fp");
    EXPECT_EQ(loaded.status, LoadResult::Status::kBadMagic);
}

TEST(PersistStore, RejectsMismatchedFingerprint) {
    TempFile file("fingerprint");
    std::vector<StoreEntry> entries{
        {"sig", std::make_shared<const JobResult>(sampleResult())}};
    ASSERT_TRUE(CacheStore::save(file.path(), "fp-writer", entries));
    const auto loaded = CacheStore::load(file.path(), "fp-reader");
    EXPECT_EQ(loaded.status, LoadResult::Status::kBadFingerprint);
    EXPECT_NE(loaded.detail.find("fp-writer"), std::string::npos);
    EXPECT_NE(loaded.detail.find("fp-reader"), std::string::npos);
}

// ---- salvage ----------------------------------------------------------------

[[nodiscard]] std::vector<StoreEntry> threeEntries() {
    std::vector<StoreEntry> entries;
    for (const char* key : {"sig-A", "sig-B", "sig-C"})
        entries.push_back(
            {key, std::make_shared<const JobResult>(sampleResult())});
    return entries;
}

TEST(PersistSalvage, TruncatedTailSalvagesTheIntactPrefix) {
    TempFile file("salvage_trunc");
    ASSERT_TRUE(CacheStore::save(file.path(), "fp", threeEntries()));
    const std::string bytes = readFile(file.path());
    writeFile(file.path(), bytes.substr(0, bytes.size() - 1));
    const auto loaded = CacheStore::load(file.path(), "fp");
    EXPECT_EQ(loaded.status, LoadResult::Status::kSalvaged);
    EXPECT_TRUE(loaded.usable());
    EXPECT_FALSE(loaded.ok()) << "salvaged must stay distinct from loaded";
    ASSERT_EQ(loaded.entries.size(), 2u);
    EXPECT_EQ(loaded.entries[0].key, "sig-A");
    EXPECT_EQ(loaded.entries[1].key, "sig-B");
    EXPECT_EQ(loaded.droppedEntries, 1u);
    EXPECT_NE(loaded.detail.find("salvaged 2 of 3"), std::string::npos)
        << loaded.detail;
}

TEST(PersistSalvage, FlippedByteInTheLastEntrySalvagesTheRest) {
    TempFile file("salvage_flip");
    ASSERT_TRUE(CacheStore::save(file.path(), "fp", threeEntries()));
    std::string bytes = readFile(file.path());
    bytes[bytes.size() - 10] =
        static_cast<char>(bytes[bytes.size() - 10] ^ 0x01);
    writeFile(file.path(), bytes);
    const auto loaded = CacheStore::load(file.path(), "fp");
    EXPECT_EQ(loaded.status, LoadResult::Status::kSalvaged);
    ASSERT_EQ(loaded.entries.size(), 2u);
    EXPECT_EQ(loaded.droppedEntries, 1u);
    // The surviving entries are checksum-verified, not just hoped-for.
    expectSameResult(*threeEntries()[0].result, *loaded.entries[0].result);
}

TEST(PersistSalvage, DamagedFirstEntryMeansNoSalvage) {
    // A prefix of zero entries is indistinguishable from random damage:
    // the load must reject outright (kCorrupt), not report a successful
    // zero-entry salvage.
    TempFile file("salvage_none");
    ASSERT_TRUE(CacheStore::save(file.path(), "fp", threeEntries()));
    std::string bytes = readFile(file.path());
    const std::size_t headerEnd = kMagic.size() + 4 /*version*/ +
                                  (4 + 2) /*"fp" str*/ + 8 /*count u64*/;
    // First byte of entry 0's key ("sig-A"): the entry checksum rejects
    // it, the salvageable prefix is empty.
    const std::size_t keyByte = headerEnd + 4;
    bytes[keyByte] = static_cast<char>(bytes[keyByte] ^ 0x01);
    writeFile(file.path(), bytes);
    const auto loaded = CacheStore::load(file.path(), "fp");
    EXPECT_EQ(loaded.status, LoadResult::Status::kCorrupt);
    EXPECT_FALSE(loaded.usable());
    EXPECT_TRUE(loaded.entries.empty());
}

TEST(PersistSalvage, CorruptCountFieldClampsDroppedEntries) {
    // Worst placement for a single bit flip: the count field itself. The
    // declared count becomes astronomically large, so `count - salvaged`
    // is a garbage number — the drop accounting must clamp to what the
    // remaining bytes could plausibly hold and flag the count untrusted
    // rather than publish the garbage.
    TempFile file("salvage_count");
    ASSERT_TRUE(CacheStore::save(file.path(), "fp", threeEntries()));
    std::string bytes = readFile(file.path());
    const std::size_t countOff =
        kMagic.size() + 4 /*version*/ + (4 + 2) /*"fp" str*/;
    // Little-endian high byte: declared count jumps to ~2^59.
    bytes[countOff + 7] = static_cast<char>(bytes[countOff + 7] ^ 0x08);
    writeFile(file.path(), bytes);
    const auto loaded = CacheStore::load(file.path(), "fp");
    EXPECT_EQ(loaded.status, LoadResult::Status::kSalvaged);
    ASSERT_EQ(loaded.entries.size(), 3u)
        << "every checksummed entry must still be adopted";
    EXPECT_EQ(loaded.droppedEntries, 0u)
        << "no bytes remain, so no real entries can have been dropped";
    EXPECT_NE(loaded.detail.find("declared entry count untrusted"),
              std::string::npos)
        << loaded.detail;
}

TEST(PersistSalvage, EngineWarmStartsFromASalvagedStore) {
    TempFile file("salvage_warm");
    EngineOptions opt;
    opt.cacheFile = file.path();
    std::vector<JobSpec> specs;
    for (const char* name : {"majority7", "counter8"}) {
        JobSpec s;
        s.benchmark = name;
        specs.push_back(std::move(s));
    }
    {
        Engine engine(opt);
        for (const auto& r : engine.runBatch(specs))
            ASSERT_TRUE(r.ok) << r.error;
        ASSERT_TRUE(engine.flushCache());
    }
    const std::string bytes = readFile(file.path());
    writeFile(file.path(), bytes.substr(0, bytes.size() - 3));

    Engine warm(opt);
    EXPECT_EQ(warm.persistInfo().loadStatus, LoadResult::Status::kSalvaged);
    EXPECT_EQ(warm.persistInfo().loadedEntries, 1u);
    EXPECT_EQ(warm.persistInfo().droppedEntries, 1u);
    const auto results = warm.runBatch(specs);
    std::size_t diskHits = 0;
    for (const auto& r : results) {
        ASSERT_TRUE(r.ok) << r.error;
        diskHits += r.cacheSource == CacheSource::kDisk ? 1 : 0;
    }
    EXPECT_EQ(diskHits, 1u)
        << "the salvaged prefix must still pay for its jobs";
}

// ---- injected save/load faults ---------------------------------------------

/// Arms a plan for the test body; disarms all sites on scope exit.
class ScopedFaults {
public:
    explicit ScopedFaults(const std::string& plan) {
        std::string error;
        EXPECT_TRUE(fault::armPlan(plan, &error)) << error;
    }
    ~ScopedFaults() { fault::disarmAllForTest(); }
};

TEST(PersistFault, EnospcFailsTheSaveAndLeavesNoFile) {
    TempFile file("fault_enospc");
    std::string error;
    {
        ScopedFaults faults("persist.save.enospc:n1");
        EXPECT_FALSE(
            CacheStore::save(file.path(), "fp", threeEntries(), &error));
        EXPECT_NE(error.find("no space left on device"), std::string::npos)
            << error;
    }
    EXPECT_EQ(CacheStore::load(file.path(), "fp").status,
              LoadResult::Status::kNoFile)
        << "a failed save must not leave a target file behind";
    EXPECT_TRUE(CacheStore::save(file.path(), "fp", threeEntries()));
}

TEST(PersistFault, ShortWriteLeavesATornStoreTheLoadContains) {
    // The nastiest disk failure: the save *reports success* but the
    // store is torn mid-file. The next load must contain the damage —
    // salvage the intact prefix or reject — never crash or serve junk.
    TempFile file("fault_short");
    {
        ScopedFaults faults("persist.save.short_write:n1");
        EXPECT_TRUE(CacheStore::save(file.path(), "fp", threeEntries()));
    }
    const auto loaded = CacheStore::load(file.path(), "fp");
    EXPECT_FALSE(loaded.ok());
    if (loaded.status == LoadResult::Status::kSalvaged) {
        EXPECT_GE(loaded.entries.size(), 1u);
        EXPECT_LT(loaded.entries.size(), 3u);
    } else {
        EXPECT_EQ(loaded.status, LoadResult::Status::kCorrupt);
        EXPECT_TRUE(loaded.entries.empty());
    }
}

TEST(PersistFault, RenameFailureKeepsThePreviousStoreVersion) {
    TempFile file("fault_rename");
    ASSERT_TRUE(CacheStore::save(file.path(), "fp", threeEntries()));
    const std::string before = readFile(file.path());
    auto all = threeEntries();
    const std::vector<StoreEntry> smaller(all.begin(), all.begin() + 1);
    std::string error;
    {
        ScopedFaults faults("persist.save.rename:n1");
        EXPECT_FALSE(CacheStore::save(file.path(), "fp", smaller, &error));
        EXPECT_NE(error.find("persist.save.rename"), std::string::npos)
            << error;
    }
    EXPECT_EQ(readFile(file.path()), before)
        << "an aborted save must leave the previous version byte-intact";
}

TEST(PersistFault, LoadFlipIsCaughtAndClearsWhenDisarmed) {
    TempFile file("fault_flip");
    ASSERT_TRUE(CacheStore::save(file.path(), "fp", threeEntries()));
    {
        ScopedFaults faults("persist.load.flip:n1");
        const auto loaded = CacheStore::load(file.path(), "fp");
        EXPECT_FALSE(loaded.ok());
        EXPECT_TRUE(loaded.status == LoadResult::Status::kSalvaged ||
                    loaded.status == LoadResult::Status::kCorrupt);
    }
    EXPECT_TRUE(CacheStore::load(file.path(), "fp").ok())
        << "the file itself was never damaged; disarmed loads are clean";
}

// ---- engine-level warm start / flush ---------------------------------------

TEST(PersistEngine, WarmStartServesEverythingFromDisk) {
    TempFile file("warmstart");
    EngineOptions opt;
    opt.cacheFile = file.path();
    std::vector<JobSpec> specs;
    for (const char* name : {"majority7", "counter8"}) {
        JobSpec s;
        s.benchmark = name;
        specs.push_back(std::move(s));
    }

    std::vector<JobResult> first;
    {
        Engine engine(opt);
        EXPECT_EQ(engine.persistInfo().loadStatus,
                  LoadResult::Status::kNoFile);
        first = engine.runBatch(specs);
        for (const auto& r : first) {
            ASSERT_TRUE(r.ok) << r.error;
            EXPECT_EQ(r.cacheSource, CacheSource::kComputed);
        }
        std::size_t saved = 0;
        std::string error;
        ASSERT_TRUE(engine.flushCache(&saved, &error)) << error;
        EXPECT_EQ(saved, specs.size());
    }

    Engine warm(opt);
    EXPECT_EQ(warm.persistInfo().loadStatus, LoadResult::Status::kLoaded);
    EXPECT_EQ(warm.persistInfo().loadedEntries, specs.size());
    const auto second = warm.runBatch(specs);
    ASSERT_EQ(second.size(), first.size());
    for (std::size_t i = 0; i < second.size(); ++i) {
        ASSERT_TRUE(second[i].ok) << second[i].error;
        EXPECT_TRUE(second[i].cacheHit);
        EXPECT_EQ(second[i].cacheSource, CacheSource::kDisk);
        EXPECT_EQ(second[i].cacheKey, first[i].cacheKey);
        EXPECT_EQ(second[i].qor.area, first[i].qor.area);
        EXPECT_EQ(second[i].qor.delay, first[i].qor.delay);
        EXPECT_EQ(second[i].blocks, first[i].blocks);
        EXPECT_EQ(second[i].verification, first[i].verification);
    }
}

TEST(PersistEngine, DestructorFlushesNewResults) {
    TempFile file("dtorflush");
    EngineOptions opt;
    opt.cacheFile = file.path();
    {
        Engine engine(opt);
        JobSpec s;
        s.benchmark = "majority7";
        const auto r = engine.runJob(s);
        ASSERT_TRUE(r.ok) << r.error;
        // no explicit flush: the destructor must persist the entry
    }
    const auto loaded =
        CacheStore::load(file.path(), persistFingerprint(opt));
    ASSERT_TRUE(loaded.ok()) << loaded.detail;
    EXPECT_EQ(loaded.entries.size(), 1u);
}

TEST(PersistEngine, ReadonlyNeverWrites) {
    TempFile file("readonly");
    EngineOptions opt;
    opt.cacheFile = file.path();
    opt.cacheReadonly = true;
    {
        Engine engine(opt);
        JobSpec s;
        s.benchmark = "majority7";
        ASSERT_TRUE(engine.runJob(s).ok);
        std::string error;
        EXPECT_FALSE(engine.flushCache(nullptr, &error));
    }
    EXPECT_EQ(CacheStore::load(file.path(), persistFingerprint(opt)).status,
              LoadResult::Status::kNoFile);
}

// Regression: with caching disabled (capacity 0) the snapshot is always
// empty — a flush then must refuse rather than replace a warm store
// with a zero-entry file.
TEST(PersistEngine, DisabledCacheNeverClobbersTheStore) {
    TempFile file("capacity0");
    EngineOptions writer;
    writer.cacheFile = file.path();
    {
        Engine engine(writer);
        JobSpec s;
        s.benchmark = "majority7";
        ASSERT_TRUE(engine.runJob(s).ok);
    }
    EngineOptions disabled = writer;
    disabled.cacheCapacity = 0;
    {
        Engine engine(disabled);
        EXPECT_EQ(engine.persistInfo().loadedEntries, 0u);
        JobSpec s;
        s.benchmark = "majority7";
        ASSERT_TRUE(engine.runJob(s).ok);
        std::string error;
        EXPECT_FALSE(engine.flushCache(nullptr, &error));
        EXPECT_NE(error.find("disabled"), std::string::npos) << error;
    }
    const auto loaded =
        CacheStore::load(file.path(), persistFingerprint(writer));
    ASSERT_TRUE(loaded.ok()) << loaded.detail;
    EXPECT_EQ(loaded.entries.size(), 1u)
        << "the warm store must survive a capacity-0 run untouched";
}

TEST(PersistEngine, CorruptStoreColdStartsAndRecovers) {
    TempFile file("recover");
    writeFile(file.path(), "garbage garbage garbage");
    EngineOptions opt;
    opt.cacheFile = file.path();
    Engine engine(opt);
    EXPECT_EQ(engine.persistInfo().loadStatus,
              LoadResult::Status::kBadMagic);
    JobSpec s;
    s.benchmark = "majority7";
    const auto r = engine.runJob(s);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.cacheSource, CacheSource::kComputed);
    // And the flush replaces the garbage with a valid store.
    ASSERT_TRUE(engine.flushCache());
    EXPECT_TRUE(
        CacheStore::load(file.path(), persistFingerprint(opt)).ok());
}

TEST(PersistEngine, WrongFingerprintColdStarts) {
    TempFile file("fpmismatch");
    EngineOptions writer;
    writer.cacheFile = file.path();
    {
        Engine engine(writer);
        JobSpec s;
        s.benchmark = "majority7";
        ASSERT_TRUE(engine.runJob(s).ok);
    }
    EngineOptions reader = writer;
    reader.equiv.randomBatches = 9;  // different verification effort
    Engine engine(reader);
    EXPECT_EQ(engine.persistInfo().loadStatus,
              LoadResult::Status::kBadFingerprint);
    EXPECT_EQ(engine.persistInfo().loadedEntries, 0u);
}

// ---- cross-process cache merge (shard coordinator semantics) ---------------

// Two workers computed overlapping key sets; the coordinator's
// newest-LRU-wins merge must keep exactly one entry per key, the merged
// store must save/load clean (load() verifies every checksum), and the
// surviving entry must be the newest one.
TEST(PersistShardMerge, OverlappingWorkerDeltasMergeNewestWins) {
    TempFile file("shardmerge");
    JobResult older = sampleResult();
    older.qor.area = 100.0;
    JobResult newer = sampleResult();
    newer.qor.area = 200.0;

    const auto payloadOf = [](const JobResult& r) {
        std::string bytes;
        serializeJobResult(r, bytes);
        return bytes;
    };
    // Worker 0 computed sig-A early (stamp 1) and sig-B; worker 1
    // recomputed sig-A later in its own LRU time (stamp 8) and adds
    // sig-C. Drain order: worker 0 first.
    std::vector<engine::shard::CacheDelta> deltas = {
        {"sig-A", payloadOf(older), 1},
        {"sig-B", payloadOf(older), 2},
        {"sig-A", payloadOf(newer), 8},
        {"sig-C", payloadOf(newer), 3},
    };
    const auto merged = engine::shard::mergeCacheDeltas(std::move(deltas));
    ASSERT_EQ(merged.size(), 3u);

    std::vector<StoreEntry> entries;
    for (const auto& d : merged)
        entries.push_back({d.key, deserializeJobResult(d.payload)});
    ASSERT_TRUE(CacheStore::save(file.path(), "fp", entries));
    const auto loaded = CacheStore::load(file.path(), "fp");
    ASSERT_TRUE(loaded.ok()) << loaded.detail;
    ASSERT_EQ(loaded.entries.size(), 3u);
    for (const auto& e : loaded.entries) {
        if (e.key == "sig-A")
            EXPECT_EQ(e.result->qor.area, 200.0) << "newest entry must win";
    }
}

// End-to-end flavor with real engines standing in for two workers: both
// compute majority7 (overlapping canonical key), each contributes a
// private job, and the merged adoption + flush must yield exactly three
// entries in a clean store.
TEST(PersistShardMerge, TwoEngineDeltasAdoptAndFlushClean) {
    TempFile file("twoengines");
    const auto deltaFor = [](std::initializer_list<const char*> names) {
        Engine engine{EngineOptions{}};
        for (const char* name : names) {
            JobSpec s;
            s.benchmark = name;
            EXPECT_TRUE(engine.runJob(s).ok);
        }
        return engine.cacheDelta();
    };
    auto deltas = deltaFor({"majority7", "counter8"});
    const auto second = deltaFor({"majority7", "adder8"});
    deltas.insert(deltas.end(), second.begin(), second.end());
    const auto merged = engine::shard::mergeCacheDeltas(std::move(deltas));
    ASSERT_EQ(merged.size(), 3u);

    EngineOptions opt;
    opt.cacheFile = file.path();
    Engine coordinator(opt);
    EXPECT_EQ(coordinator.adoptCacheDeltas(merged), 3u);
    std::size_t saved = 0;
    ASSERT_TRUE(coordinator.flushCache(&saved));
    EXPECT_EQ(saved, 3u);
    const auto loaded =
        CacheStore::load(file.path(), persistFingerprint(opt));
    ASSERT_TRUE(loaded.ok()) << loaded.detail;
    EXPECT_EQ(loaded.entries.size(), 3u);
}

// The worker-side delta must exclude entries the engine was warm-started
// with: N read-only workers re-shipping the shared store back to the
// coordinator would be pure pipe waste (and a subtle way to resurrect
// stale entries).
TEST(PersistShardMerge, CacheDeltaExcludesWarmStartedEntries) {
    TempFile file("deltalocal");
    EngineOptions opt;
    opt.cacheFile = file.path();
    std::string warmKey;
    {
        Engine engine(opt);
        JobSpec s;
        s.benchmark = "majority7";
        warmKey = engine.runJob(s).cacheKey;
        ASSERT_TRUE(engine.flushCache());
    }
    EngineOptions readerOpt = opt;
    readerOpt.cacheReadonly = true;
    Engine reader(readerOpt);
    ASSERT_EQ(reader.persistInfo().loadedEntries, 1u);
    JobSpec warm;
    warm.benchmark = "majority7";  // served from the restored entry
    JobSpec fresh;
    fresh.benchmark = "counter8";  // computed locally
    ASSERT_TRUE(reader.runJob(warm).ok);
    const auto freshKey = reader.runJob(fresh).cacheKey;
    const auto delta = reader.cacheDelta();
    ASSERT_EQ(delta.size(), 1u);
    EXPECT_EQ(signatureDigest(delta[0].key), freshKey);
    EXPECT_NE(signatureDigest(delta[0].key), warmKey);
}

// N workers warm-starting read-only from one warm.pdc simultaneously —
// with a writer flushing the same path concurrently — must each get a
// clean load (the save path's atomic rename guarantees readers never
// observe partial bytes) and must never write the store themselves.
TEST(PersistShardMerge, SharedReadonlyWarmStartUnderConcurrentFlush) {
    TempFile file("sharedro");
    EngineOptions writerOpt;
    writerOpt.cacheFile = file.path();
    {
        Engine writer(writerOpt);
        JobSpec s;
        s.benchmark = "majority7";
        ASSERT_TRUE(writer.runJob(s).ok);
        ASSERT_TRUE(writer.flushCache());
    }

    EngineOptions readerOpt = writerOpt;
    readerOpt.cacheReadonly = true;
    std::atomic<bool> done{false};
    std::thread flusher([&] {
        Engine writer(writerOpt);
        JobSpec s;
        s.benchmark = "majority7";
        EXPECT_TRUE(writer.runJob(s).ok);
        while (!done.load()) {
            writer.flushCache();
            std::this_thread::yield();
        }
    });

    std::vector<std::thread> readers;
    std::atomic<std::size_t> warmLoads{0};
    for (int t = 0; t < 4; ++t)
        readers.emplace_back([&] {
            for (int round = 0; round < 5; ++round) {
                Engine reader(readerOpt);
                if (reader.persistInfo().loadStatus ==
                    LoadResult::Status::kLoaded)
                    ++warmLoads;
                else
                    ADD_FAILURE()
                        << "reader saw "
                        << loadStatusName(reader.persistInfo().loadStatus)
                        << ": " << reader.persistInfo().loadDetail;
                JobSpec s;
                s.benchmark = "majority7";
                const auto r = reader.runJob(s);
                EXPECT_TRUE(r.ok) << r.error;
                EXPECT_EQ(r.cacheSource, CacheSource::kDisk);
            }
        });
    for (auto& t : readers) t.join();
    done.store(true);
    flusher.join();
    EXPECT_EQ(warmLoads.load(), 20u);
    EXPECT_TRUE(
        CacheStore::load(file.path(), persistFingerprint(writerOpt)).ok());
}

TEST(PersistEngine, ConcurrentSaveWhileComputing) {
    TempFile file("concurrent");
    EngineOptions opt;
    opt.cacheFile = file.path();
    opt.jobs = 4;
    Engine engine(opt);

    std::vector<JobSpec> specs;
    for (const char* name :
         {"majority7", "counter8", "adder8", "comparator8"}) {
        JobSpec s;
        s.benchmark = name;
        specs.push_back(std::move(s));
    }

    // Hammer flushCache from two threads while the batch computes:
    // snapshots must only ever contain ready entries, and every written
    // file version must be fully valid.
    std::atomic<bool> done{false};
    const auto flusher = [&] {
        while (!done.load()) {
            engine.flushCache();
            const auto loaded =
                CacheStore::load(file.path(), persistFingerprint(opt));
            if (loaded.status != LoadResult::Status::kNoFile) {
                EXPECT_TRUE(loaded.ok()) << loaded.detail;
            }
            std::this_thread::yield();
        }
    };
    std::thread t1(flusher), t2(flusher);
    const auto results = engine.runBatch(specs);
    done.store(true);
    t1.join();
    t2.join();
    for (const auto& r : results) ASSERT_TRUE(r.ok) << r.error;

    ASSERT_TRUE(engine.flushCache());
    const auto loaded =
        CacheStore::load(file.path(), persistFingerprint(opt));
    ASSERT_TRUE(loaded.ok()) << loaded.detail;
    EXPECT_EQ(loaded.entries.size(), specs.size());
}

}  // namespace
}  // namespace pd::engine::persist
