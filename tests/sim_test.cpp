// Simulator and equivalence-checker tests.
#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "sim/equivalence.hpp"
#include "sim/simulator.hpp"

namespace pd::sim {
namespace {

using netlist::Builder;
using netlist::Netlist;
using netlist::NetId;

TEST(Simulator, AllGateTypes) {
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    const NetId s = nl.addInput("s");
    nl.markOutput("and", nl.addGate(netlist::GateType::kAnd, a, b));
    nl.markOutput("or", nl.addGate(netlist::GateType::kOr, a, b));
    nl.markOutput("xor", nl.addGate(netlist::GateType::kXor, a, b));
    nl.markOutput("xnor", nl.addGate(netlist::GateType::kXnor, a, b));
    nl.markOutput("nand", nl.addGate(netlist::GateType::kNand, a, b));
    nl.markOutput("nor", nl.addGate(netlist::GateType::kNor, a, b));
    nl.markOutput("not", nl.addGate(netlist::GateType::kNot, a));
    nl.markOutput("mux", nl.addGate(netlist::GateType::kMux, s, a, b));
    nl.markOutput("c1", nl.addGate(netlist::GateType::kConst1));

    Simulator sim(nl);
    const std::uint64_t A = 0b1100;
    const std::uint64_t B = 0b1010;
    const std::uint64_t S = 0b1111;
    const auto out = sim.run(std::vector<std::uint64_t>{A, B, S});
    const std::uint64_t mask = 0xf;
    EXPECT_EQ(out[0] & mask, A & B);
    EXPECT_EQ(out[1] & mask, A | B);
    EXPECT_EQ(out[2] & mask, A ^ B);
    EXPECT_EQ(out[3] & mask, ~(A ^ B) & mask);
    EXPECT_EQ(out[4] & mask, ~(A & B) & mask);
    EXPECT_EQ(out[5] & mask, ~(A | B) & mask);
    EXPECT_EQ(out[6] & mask, ~A & mask);
    EXPECT_EQ(out[7] & mask, B & mask);  // s=1 everywhere → picks in2 (b)
    EXPECT_EQ(out[8] & mask, mask);
}

Netlist xorAdderBit() {
    // Tiny adder: s = a ^ b, c = a & b (half adder), ports a,b 1 bit.
    Netlist nl;
    Builder b(nl);
    const NetId x = b.input("a0");
    const NetId y = b.input("b0");
    nl.markOutput("s0", b.mkXor(x, y));
    nl.markOutput("s1", b.mkAnd(x, y));
    return nl;
}

TEST(Equivalence, ExhaustivePass) {
    const Netlist nl = xorAdderBit();
    const std::vector<PortLayout> ports{{"a", 1}, {"b", 1}};
    const auto res = checkAgainstReference(
        nl, ports, {"s0", "s1"},
        [](std::span<const std::uint64_t> v) { return v[0] + v[1]; });
    EXPECT_TRUE(res.equivalent);
    EXPECT_TRUE(res.exhaustive);
    EXPECT_EQ(res.vectorsTested, 4u);
}

TEST(Equivalence, DetectsBug) {
    Netlist nl;
    Builder b(nl);
    const NetId x = b.input("a0");
    const NetId y = b.input("b0");
    nl.markOutput("s0", b.mkOr(x, y));  // wrong: should be XOR
    nl.markOutput("s1", b.mkAnd(x, y));
    const std::vector<PortLayout> ports{{"a", 1}, {"b", 1}};
    const auto res = checkAgainstReference(
        nl, ports, {"s0", "s1"},
        [](std::span<const std::uint64_t> v) { return v[0] + v[1]; });
    EXPECT_FALSE(res.equivalent);
    EXPECT_NE(res.message.find("s0"), std::string::npos);
}

TEST(Equivalence, RandomizedPathForWideCircuits) {
    // 24-bit wide identity circuit exercises the randomized path.
    Netlist nl;
    Builder b(nl);
    std::vector<NetId> bits;
    for (int i = 0; i < 24; ++i) bits.push_back(b.input("a" + std::to_string(i)));
    for (int i = 0; i < 24; ++i)
        nl.markOutput("z" + std::to_string(i), bits[static_cast<std::size_t>(i)]);
    const std::vector<PortLayout> ports{{"a", 24}};
    std::vector<std::string> names;
    for (int i = 0; i < 24; ++i) names.push_back("z" + std::to_string(i));
    const auto res = checkAgainstReference(
        nl, ports, names,
        [](std::span<const std::uint64_t> v) { return v[0]; },
        {.exhaustiveLimitBits = 20, .randomBatches = 32});
    EXPECT_TRUE(res.equivalent);
    EXPECT_FALSE(res.exhaustive);
    EXPECT_GT(res.vectorsTested, 1000u);
}

TEST(Equivalence, InputCountMismatchReported) {
    const Netlist nl = xorAdderBit();
    const std::vector<PortLayout> ports{{"a", 2}, {"b", 2}};
    const auto res = checkAgainstReference(
        nl, ports, {"s0", "s1"},
        [](std::span<const std::uint64_t> v) { return v[0] + v[1]; });
    EXPECT_FALSE(res.equivalent);
    EXPECT_NE(res.message.find("mismatch"), std::string::npos);
}

}  // namespace
}  // namespace pd::sim
