// §5.3 linear-dependence minimization tests, including the paper's LZD
// basis example.
#include <gtest/gtest.h>

#include "anf/parser.hpp"
#include "core/basis.hpp"
#include "core/minimize.hpp"

namespace pd::core {
namespace {

using anf::Anf;
using anf::parse;
using anf::VarTable;

TEST(MinimizeBasis, DependentFirstsFoldSeconds) {
    // {(X1,Y1),(X2,Y2),(X1^X2,Y3)}: the third first is dependent → list
    // shrinks to two pairs and the value is preserved.
    VarTable vt;
    PairList pairs;
    pairs.push_back({parse("a", vt), parse("p", vt), {}});
    pairs.push_back({parse("b", vt), parse("q", vt), {}});
    pairs.push_back({parse("a ^ b", vt), parse("r", vt), {}});
    const Anf before = pairListValue(pairs);

    const auto removed = minimizeBasisLinear(pairs);
    EXPECT_EQ(removed, 1u);
    EXPECT_EQ(pairs.size(), 2u);
    EXPECT_EQ(pairListValue(pairs), before);
}

TEST(MinimizeBasis, PaperLzdExample) {
    // Original LZD basis {V0, P00, P01, V0+P00, V0+P01} reduces to three
    // elements (paper §5.3).
    VarTable vt;
    const Anf v0 = parse("a0 ^ a1 ^ a2 ^ a3 ^ a0*a1 ^ a0*a2", vt);  // stand-in
    const Anf p00 = parse("a0 ^ a1*a2", vt);
    const Anf p01 = parse("a1 ^ a2*a3", vt);
    PairList pairs;
    pairs.push_back({v0, parse("y0", vt), {}});
    pairs.push_back({p00, parse("y1", vt), {}});
    pairs.push_back({p01, parse("y2", vt), {}});
    pairs.push_back({v0 ^ p00, parse("y3", vt), {}});
    pairs.push_back({v0 ^ p01, parse("y4", vt), {}});
    const Anf before = pairListValue(pairs);

    minimizeBasisLinear(pairs);
    EXPECT_EQ(pairs.size(), 3u);
    EXPECT_EQ(pairListValue(pairs), before);
}

TEST(MinimizeBasis, DependentSecondsFoldFirsts) {
    VarTable vt;
    PairList pairs;
    pairs.push_back({parse("a", vt), parse("p", vt), {}});
    pairs.push_back({parse("b", vt), parse("q", vt), {}});
    pairs.push_back({parse("c", vt), parse("p ^ q", vt), {}});
    const Anf before = pairListValue(pairs);
    minimizeBasisLinear(pairs);
    EXPECT_EQ(pairs.size(), 2u);
    EXPECT_EQ(pairListValue(pairs), before);
}

TEST(MinimizeBasis, IndependentListUntouched) {
    VarTable vt;
    PairList pairs;
    pairs.push_back({parse("a", vt), parse("p", vt), {}});
    pairs.push_back({parse("b", vt), parse("q", vt), {}});
    EXPECT_EQ(minimizeBasisLinear(pairs), 0u);
    EXPECT_EQ(pairs.size(), 2u);
}

TEST(MinimizeBasis, CascadesToFixpoint) {
    // After removing one dependency, a new one may appear; ensure fixpoint.
    VarTable vt;
    PairList pairs;
    pairs.push_back({parse("a", vt), parse("p", vt), {}});
    pairs.push_back({parse("a ^ b", vt), parse("p", vt), {}});  // merge → b
    pairs.push_back({parse("b", vt), parse("q", vt), {}});
    const Anf before = pairListValue(pairs);
    minimizeBasisLinear(pairs);
    EXPECT_LE(pairs.size(), 2u);
    EXPECT_EQ(pairListValue(pairs), before);
}

}  // namespace
}  // namespace pd::core
