// §5.5 identity discovery tests — the paper's majority-7 basis example.
#include <gtest/gtest.h>

#include "anf/ops.hpp"
#include "anf/parser.hpp"
#include "core/identities.hpp"

namespace pd::core {
namespace {

using anf::Anf;
using anf::parse;
using anf::Var;
using anf::VarTable;

/// Builds the majority-7 first basis over a1..a4: the elementary symmetric
/// polynomials e1, e2, e3, e4 (paper §5.5).
struct MajBasis {
    VarTable vt;
    std::vector<Anf> basis;
    std::vector<Var> newVars;

    MajBasis() {
        basis.push_back(parse("a1 ^ a2 ^ a3 ^ a4", vt));
        basis.push_back(parse(
            "a1*a2 ^ a1*a3 ^ a1*a4 ^ a2*a3 ^ a2*a4 ^ a3*a4", vt));
        basis.push_back(
            parse("a1*a2*a3 ^ a1*a2*a4 ^ a1*a3*a4 ^ a2*a3*a4", vt));
        basis.push_back(parse("a1*a2*a3*a4", vt));
        for (int i = 1; i <= 4; ++i)
            newVars.push_back(vt.addDerived("s" + std::to_string(i), 0));
    }
};

TEST(FindIdentities, MajorityBasisReductionAndAnnihilators) {
    MajBasis m;
    const auto scan = findIdentities(m.basis, m.newVars, 2);

    // Functional: s3 = s1*s2 (paper: s3 ⊕ s1s2 = 0).
    ASSERT_TRUE(scan.reductions.contains(m.newVars[2]));
    EXPECT_EQ(scan.reductions.at(m.newVars[2]),
              Anf::var(m.newVars[0]) * Anf::var(m.newVars[1]));

    // Annihilating: s1*s4 = 0, s2*s4 = 0, s3*s4 = 0.
    const auto hasAnnihilator = [&](const Anf& want) {
        for (const auto& a : scan.annihilators)
            if (a == want) return true;
        return false;
    };
    EXPECT_TRUE(
        hasAnnihilator(Anf::var(m.newVars[0]) * Anf::var(m.newVars[3])));
    EXPECT_TRUE(
        hasAnnihilator(Anf::var(m.newVars[1]) * Anf::var(m.newVars[3])));
    EXPECT_TRUE(
        hasAnnihilator(Anf::var(m.newVars[2]) * Anf::var(m.newVars[3])));
}

TEST(FindIdentities, EveryIdentityIsSound) {
    // Substituting the basis expressions back into each reported identity
    // must give the zero ANF.
    MajBasis m;
    const auto scan = findIdentities(m.basis, m.newVars, 2);
    std::unordered_map<Var, Anf> defs;
    for (std::size_t i = 0; i < m.newVars.size(); ++i)
        defs[m.newVars[i]] = m.basis[i];
    for (const auto& id : scan.annihilators)
        EXPECT_TRUE(anf::substitute(id, defs).isZero())
            << "unsound identity";
    for (const auto& [v, rhs] : scan.reductions)
        EXPECT_EQ(anf::substitute(rhs, defs), defs.at(v))
            << "unsound reduction";
}

TEST(FindIdentities, ConstantProductIdentity) {
    // X=(1^a), Y=(1^b), product (1^a)(1^b), and Z=a^b^ab: X*Z = ?
    // Simpler: two complementary expressions multiply to zero.
    VarTable vt;
    std::vector<Anf> basis = {parse("a", vt), parse("1 ^ a", vt)};
    std::vector<Var> nv = {vt.addDerived("t1", 0), vt.addDerived("t2", 0)};
    const auto scan = findIdentities(basis, nv, 2);
    bool sawProductZero = false;
    for (const auto& id : scan.annihilators)
        if (id == Anf::var(nv[0]) * Anf::var(nv[1])) sawProductZero = true;
    EXPECT_TRUE(sawProductZero);
    // Also functional: t2 = 1 ^ t1.
    ASSERT_TRUE(scan.reductions.contains(nv[1]));
    EXPECT_EQ(scan.reductions.at(nv[1]), ~Anf::var(nv[0]));
}

TEST(FindIdentities, LinearDependenceBecomesReduction) {
    VarTable vt;
    std::vector<Anf> basis = {parse("a", vt), parse("b", vt),
                              parse("a ^ b", vt)};
    std::vector<Var> nv = {vt.addDerived("t1", 0), vt.addDerived("t2", 0),
                           vt.addDerived("t3", 0)};
    const auto scan = findIdentities(basis, nv, 2);
    ASSERT_TRUE(scan.reductions.contains(nv[2]));
    EXPECT_EQ(scan.reductions.at(nv[2]),
              Anf::var(nv[0]) ^ Anf::var(nv[1]));
}

TEST(FindIdentities, IndependentBasisYieldsNothing) {
    VarTable vt;
    std::vector<Anf> basis = {parse("a", vt), parse("b", vt),
                              parse("c", vt)};
    std::vector<Var> nv = {vt.addDerived("t1", 0), vt.addDerived("t2", 0),
                           vt.addDerived("t3", 0)};
    const auto scan = findIdentities(basis, nv, 2);
    EXPECT_TRUE(scan.reductions.empty());
    EXPECT_TRUE(scan.annihilators.empty());
}

TEST(FindIdentities, PrefersCheapestReduction) {
    // Both s3 = s1·s2 and (say) s1 = f(s2,s3,...) may be expressible; the
    // scan must reduce the element with the cheapest right-hand side —
    // the paper removes s3, keeping the simple leaders as hardware.
    MajBasis m;
    const auto scan = findIdentities(m.basis, m.newVars, 2);
    ASSERT_TRUE(scan.reductions.contains(m.newVars[2]))
        << "expected the s3 = s1*s2 reduction";
    const auto& rhs = scan.reductions.at(m.newVars[2]);
    EXPECT_LE(rhs.literalCount(), 2u);
}

TEST(FindIdentities, ChainedReductionsStayAcyclic) {
    // Basis designed so two reductions fire, one referencing the other:
    // b0 = x, b1 = x·y, b2 = x·y (duplicate), b3 = x ^ x·y.
    VarTable vt;
    std::vector<Anf> basis;
    basis.push_back(parse("x", vt));
    basis.push_back(parse("x*y", vt));
    basis.push_back(parse("x*y", vt));
    basis.push_back(parse("x ^ x*y", vt));
    std::vector<Var> nv;
    for (int i = 0; i < 4; ++i)
        nv.push_back(vt.addDerived("t" + std::to_string(i), 0));
    const auto scan = findIdentities(basis, nv, 2);
    ASSERT_GE(scan.reductions.size(), 2u);
    // No reduction may (transitively) reference itself: walk each chain.
    for (const auto& [v, rhs] : scan.reductions) {
        anf::VarSet seen;
        seen.insert(v);
        Anf cur = rhs;
        for (int depth = 0; depth < 8; ++depth) {
            bool hit = false;
            cur.support().forEachVar([&](Var w) {
                if (seen.contains(w)) hit = true;
            });
            ASSERT_FALSE(hit) << "cycle through " << vt.name(v);
            bool any = false;
            cur.support().forEachVar([&](Var w) {
                if (scan.reductions.contains(w)) any = true;
            });
            if (!any) break;
            cur = anf::substitute(cur, scan.reductions);
        }
    }
}

TEST(FindIdentities, Degree3ProductsWhenRequested) {
    // a*b*c = 0 is only found at maxDegree 3 when no pair product is zero.
    VarTable vt;
    std::vector<Anf> basis = {parse("a ^ a*c", vt), parse("b", vt),
                              parse("c", vt)};
    // (a ^ ac)·c = ac ^ ac = 0 — pairwise. Choose trickier basis:
    basis = {parse("a ^ a*b ^ a*c", vt), parse("b ^ b*c", vt),
             parse("c", vt)};
    // pairwise products: e1*e3 = ac^abc^ac... compute in test below; we
    // just assert soundness of whatever degree-3 scan returns.
    std::vector<Var> nv = {vt.addDerived("t1", 0), vt.addDerived("t2", 0),
                           vt.addDerived("t3", 0)};
    const auto scan2 = findIdentities(basis, nv, 2);
    const auto scan3 = findIdentities(basis, nv, 3);
    EXPECT_GE(scan3.annihilators.size() + scan3.reductions.size(),
              scan2.annihilators.size() + scan2.reductions.size());
    std::unordered_map<Var, Anf> defs;
    for (std::size_t i = 0; i < nv.size(); ++i) defs[nv[i]] = basis[i];
    for (const auto& id : scan3.annihilators)
        EXPECT_TRUE(anf::substitute(id, defs).isZero());
}

}  // namespace
}  // namespace pd::core
