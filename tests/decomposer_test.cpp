// End-to-end Progressive Decomposition tests (paper Fig. 5 / Fig. 6):
// the majority-7 trace, LZD block discovery, counters, adders — always
// with algebraic equivalence of the expanded result.
#include <gtest/gtest.h>

#include "anf/ops.hpp"
#include "anf/parser.hpp"
#include "circuits/adder.hpp"
#include "circuits/counter.hpp"
#include "circuits/lzd.hpp"
#include "circuits/majority.hpp"
#include "core/decomposer.hpp"

namespace pd::core {
namespace {

using anf::Anf;
using anf::VarTable;

void expectEquivalent(const Decomposition& d, const VarTable& vt,
                      const std::vector<Anf>& original) {
    const auto expanded = d.expandedOutputs(vt);
    ASSERT_EQ(expanded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i)
        EXPECT_EQ(expanded[i], original[i])
            << "output " << d.outputNames[i] << " not equivalent";
}

TEST(Decomposer, Majority7ReproducesFig6) {
    VarTable vt;
    const auto bench = circuits::makeMajority(7);
    const auto outs = bench.anf(vt);
    const auto d = decompose(vt, outs, bench.outputNames);

    EXPECT_TRUE(d.converged);
    expectEquivalent(d, vt, outs);

    // Fig. 6 structure: first block consumes {a0..a3} and materializes
    // exactly three leaders (s1, s2, s4) — s3 is reduced to s1·s2.
    ASSERT_GE(d.blocks.size(), 2u);
    const auto& b0 = d.blocks[0];
    EXPECT_EQ(b0.group.degree(), 4u);
    EXPECT_EQ(b0.outputs.size(), 3u);
    EXPECT_EQ(b0.reduced.size(), 1u);
    // The reduced element is the product of two materialized leaders.
    EXPECT_EQ(b0.reduced[0].second.termCount(), 1u);
    EXPECT_EQ(b0.reduced[0].second.degree(), 2u);

    // Second block: the remaining three inputs → a full adder (3:2
    // counter): two materialized leaders, one reduced.
    const auto& b1 = d.blocks[1];
    EXPECT_EQ(b1.group.degree(), 3u);
    EXPECT_EQ(b1.outputs.size(), 2u);
    EXPECT_EQ(b1.reduced.size(), 1u);
}

TEST(Decomposer, Majority7IdentitiesRecorded) {
    VarTable vt;
    const auto bench = circuits::makeMajority(7);
    const auto outs = bench.anf(vt);
    const auto d = decompose(vt, outs, bench.outputNames);
    ASSERT_FALSE(d.trace.empty());
    // The paper's annihilators s1·s4 = 0 and s2·s4 = 0 appear in the
    // first iteration's identity list.
    const auto& ids = d.trace[0].identities;
    const auto contains = [&](const std::string& needle) {
        for (const auto& s : ids)
            if (s.find(needle) != std::string::npos) return true;
        return false;
    };
    EXPECT_TRUE(contains("s1*s4"));
    EXPECT_TRUE(contains("s2*s4"));
}

TEST(Decomposer, Lzd16FindsNibbleBlocks) {
    VarTable vt;
    const auto bench = circuits::makeLzd(16);
    const auto outs = bench.anf(vt);
    const auto d = decompose(vt, outs, bench.outputNames);

    EXPECT_TRUE(d.converged);
    expectEquivalent(d, vt, outs);

    // The first four blocks must each consume one nibble of the input —
    // Oklobdzija's structure (paper: "the output generated for 16-bit LZD
    // ... is exactly identical to the one suggested in [8]").
    ASSERT_GE(d.blocks.size(), 4u);
    for (int j = 0; j < 4; ++j) {
        const auto& blk = d.blocks[static_cast<std::size_t>(j)];
        EXPECT_EQ(blk.group.degree(), 4u) << "block " << j;
        // Every group variable is an input bit of nibble j.
        blk.group.forEachVar([&](anf::Var v) {
            EXPECT_EQ(vt.info(v).kind, anf::VarKind::kInput);
            EXPECT_GE(vt.info(v).bitPos, 4 * j);
            EXPECT_LT(vt.info(v).bitPos, 4 * (j + 1));
        });
        // Low fan-in leadership: at most 3 leader expressions per nibble
        // (V, P0, P1) after linear minimization.
        EXPECT_LE(blk.outputs.size() + blk.reduced.size(), 3u)
            << "block " << j;
    }
}

TEST(Decomposer, Adder8FindsCarryStructure) {
    VarTable vt;
    const auto bench = circuits::makeAdder(8);
    const auto outs = bench.anf(vt);
    const auto d = decompose(vt, outs, bench.outputNames);
    EXPECT_TRUE(d.converged);
    expectEquivalent(d, vt, outs);
    // First block consumes {a0,b0,a1,b1}.
    ASSERT_FALSE(d.blocks.empty());
    const auto& b0 = d.blocks[0];
    b0.group.forEachVar([&](anf::Var v) {
        EXPECT_LE(vt.info(v).bitPos, 1);
    });
}

TEST(Decomposer, Counter8Converges) {
    VarTable vt;
    const auto bench = circuits::makeCounter(8);
    const auto outs = bench.anf(vt);
    const auto d = decompose(vt, outs, bench.outputNames);
    EXPECT_TRUE(d.converged);
    expectEquivalent(d, vt, outs);
}

TEST(Decomposer, SingleLiteralOutputTerminatesImmediately) {
    VarTable vt;
    const anf::Var a = vt.addInput("a", 0, 0);
    const auto d = decompose(vt, {Anf::var(a)}, {"y"});
    EXPECT_TRUE(d.converged);
    EXPECT_TRUE(d.blocks.empty());
    EXPECT_EQ(d.residualOutputs[0], Anf::var(a));
}

TEST(Decomposer, ConstantOutputsHandled) {
    VarTable vt;
    (void)vt.addInput("a", 0, 0);
    const auto d = decompose(vt, {Anf::one(), Anf::zero()}, {"y1", "y0"});
    EXPECT_TRUE(d.converged);
    EXPECT_EQ(d.residualOutputs[0], Anf::one());
    EXPECT_EQ(d.residualOutputs[1], Anf::zero());
}

TEST(Decomposer, MultiOutputSharing) {
    // Two outputs sharing a common 4-input subfunction must share a block
    // leader rather than duplicate it.
    VarTable vt;
    std::vector<anf::Var> a;
    for (int i = 0; i < 4; ++i)
        a.push_back(vt.addInput("a" + std::to_string(i), 0, i));
    const anf::Var p = vt.addInput("p", 1, 0);
    const anf::Var q = vt.addInput("q", 2, 0);
    Anf parity;
    for (const auto v : a) parity ^= Anf::var(v);
    const Anf o1 = parity * Anf::var(p);
    const Anf o2 = parity * Anf::var(q);
    const auto d = decompose(vt, {o1, o2}, {"o1", "o2"});
    EXPECT_TRUE(d.converged);
    expectEquivalent(d, vt, {o1, o2});
    std::size_t parityLeaders = 0;
    for (const auto& blk : d.blocks)
        for (const auto& out : blk.outputs)
            if (out.expr == parity) ++parityLeaders;
    EXPECT_EQ(parityLeaders, 1u) << "shared subfunction was duplicated";
}

TEST(Decomposer, OptionsDisableFeatures) {
    VarTable vt;
    const auto bench = circuits::makeMajority(7);
    const auto outs = bench.anf(vt);
    DecomposeOptions opt;
    opt.useIdentities = false;
    opt.useNullspaceMerging = false;
    opt.useSizeReduction = false;
    const auto d = decompose(vt, outs, bench.outputNames, opt);
    EXPECT_TRUE(d.converged);
    expectEquivalent(d, vt, outs);
    // Without identities the first block materializes all four leaders.
    ASSERT_FALSE(d.blocks.empty());
    EXPECT_EQ(d.blocks[0].outputs.size(), 4u);
    EXPECT_TRUE(d.blocks[0].reduced.empty());
}

TEST(Decomposer, TraceRecordsIterations) {
    VarTable vt;
    const auto bench = circuits::makeMajority(7);
    const auto outs = bench.anf(vt);
    const auto d = decompose(vt, outs, bench.outputNames);
    EXPECT_EQ(d.trace.size(), d.iterations);
    for (const auto& tr : d.trace) {
        EXPECT_FALSE(tr.group.empty());
        EXPECT_GE(tr.rawPairCount, tr.mergedPairCount == 0
                                       ? std::size_t{0}
                                       : std::size_t{1});
    }
}

TEST(Decomposer, RejectsBadArguments) {
    VarTable vt;
    EXPECT_THROW(decompose(vt, {}, {}), Error);
    EXPECT_THROW(decompose(vt, {Anf::one()}, {"a", "b"}), Error);
}

}  // namespace
}  // namespace pd::core
