// Structural-hashing builder tests: folding rules, CSE, and functional
// correctness of the adder/tree helpers via simulation.
#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "sim/simulator.hpp"

namespace pd::netlist {
namespace {

struct Fix : ::testing::Test {
    Netlist nl;
    Builder b{nl};
};

TEST_F(Fix, ConstantFolding) {
    const NetId a = b.input("a");
    EXPECT_EQ(b.mkAnd(a, b.constant(false)), b.constant(false));
    EXPECT_EQ(b.mkAnd(a, b.constant(true)), a);
    EXPECT_EQ(b.mkOr(a, b.constant(true)), b.constant(true));
    EXPECT_EQ(b.mkOr(a, b.constant(false)), a);
    EXPECT_EQ(b.mkXor(a, b.constant(false)), a);
    EXPECT_EQ(b.mkXor(a, a), b.constant(false));
    EXPECT_EQ(b.mkAnd(a, a), a);
    EXPECT_EQ(b.mkNot(b.constant(false)), b.constant(true));
}

TEST_F(Fix, InverterRules) {
    const NetId a = b.input("a");
    const NetId na = b.mkNot(a);
    EXPECT_EQ(b.mkNot(na), a);          // double negation
    EXPECT_EQ(b.mkNot(a), na);          // cached inverse
    EXPECT_EQ(b.mkAnd(a, na), b.constant(false));
    EXPECT_EQ(b.mkOr(a, na), b.constant(true));
    EXPECT_EQ(b.mkXor(a, na), b.constant(true));
    EXPECT_EQ(b.mkXor(a, b.constant(true)), na);
}

TEST_F(Fix, CommutativeCse) {
    const NetId a = b.input("a");
    const NetId y = b.input("b");
    EXPECT_EQ(b.mkAnd(a, y), b.mkAnd(y, a));
    EXPECT_EQ(b.mkXor(a, y), b.mkXor(y, a));
    EXPECT_EQ(nl.numLogicGates(), 2u);  // one AND, one XOR
}

TEST_F(Fix, MuxSimplifications) {
    const NetId s = b.input("s");
    const NetId d = b.input("d");
    EXPECT_EQ(b.mkMux(b.constant(false), d, s), d);
    EXPECT_EQ(b.mkMux(b.constant(true), d, s), s);
    EXPECT_EQ(b.mkMux(s, d, d), d);
    EXPECT_EQ(b.mkMux(s, b.constant(false), b.constant(true)), s);
    // mux(s, 0, d) = s & d.
    const NetId m = b.mkMux(s, b.constant(false), d);
    EXPECT_EQ(nl.gate(m).type, GateType::kAnd);
}

TEST_F(Fix, TreesComputeCorrectly) {
    std::vector<NetId> ins;
    for (int i = 0; i < 5; ++i) ins.push_back(b.input("i" + std::to_string(i)));
    nl.markOutput("and", b.mkAndTree(ins));
    nl.markOutput("or", b.mkOrTree(ins));
    nl.markOutput("xor", b.mkXorTree(ins));

    sim::Simulator simr(nl);
    // 32 exhaustive patterns over 5 inputs packed into one 64-bit word.
    std::vector<std::uint64_t> words(5, 0);
    for (std::size_t t = 0; t < 32; ++t)
        for (std::size_t i = 0; i < 5; ++i)
            if ((t >> i) & 1u) words[i] |= std::uint64_t{1} << t;
    const auto out = simr.run(words);
    for (std::size_t t = 0; t < 32; ++t) {
        const int pop = __builtin_popcount(static_cast<unsigned>(t));
        EXPECT_EQ((out[0] >> t) & 1u, t == 31 ? 1u : 0u);
        EXPECT_EQ((out[1] >> t) & 1u, t != 0 ? 1u : 0u);
        EXPECT_EQ((out[2] >> t) & 1u, static_cast<unsigned>(pop & 1));
    }
}

TEST_F(Fix, EmptyTreesGiveIdentities) {
    EXPECT_EQ(b.mkAndTree({}), b.constant(true));
    EXPECT_EQ(b.mkOrTree({}), b.constant(false));
    EXPECT_EQ(b.mkXorTree({}), b.constant(false));
}

TEST_F(Fix, FullAdderTruthTable) {
    const NetId x = b.input("x");
    const NetId y = b.input("y");
    const NetId z = b.input("z");
    const auto fa = b.fullAdder(x, y, z);
    nl.markOutput("s", fa.sum);
    nl.markOutput("c", fa.carry);
    sim::Simulator simr(nl);
    std::vector<std::uint64_t> words(3, 0);
    for (std::size_t t = 0; t < 8; ++t)
        for (std::size_t i = 0; i < 3; ++i)
            if ((t >> i) & 1u) words[i] |= std::uint64_t{1} << t;
    const auto out = simr.run(words);
    for (std::size_t t = 0; t < 8; ++t) {
        const int pop = __builtin_popcount(static_cast<unsigned>(t));
        EXPECT_EQ((out[0] >> t) & 1u, static_cast<unsigned>(pop & 1));
        EXPECT_EQ((out[1] >> t) & 1u, static_cast<unsigned>(pop >= 2));
    }
}

}  // namespace
}  // namespace pd::netlist
