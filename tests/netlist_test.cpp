// Netlist IR and statistics tests.
#include <gtest/gtest.h>

#include "netlist/netlist.hpp"
#include "netlist/stats.hpp"

namespace pd::netlist {
namespace {

TEST(Netlist, InputsOutputsAndGates) {
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    const NetId g = nl.addGate(GateType::kAnd, a, b);
    nl.markOutput("y", g);
    EXPECT_EQ(nl.inputs().size(), 2u);
    EXPECT_EQ(nl.inputName(0), "a");
    EXPECT_EQ(nl.outputs().size(), 1u);
    EXPECT_EQ(nl.outputs()[0].net, g);
    EXPECT_EQ(nl.numLogicGates(), 1u);
    EXPECT_EQ(nl.gate(g).type, GateType::kAnd);
}

TEST(Netlist, TopologicalInvariantEnforced) {
    Netlist nl;
    const NetId a = nl.addInput("a");
    // Operand referencing a not-yet-existing net must be rejected.
    EXPECT_THROW(nl.addGate(GateType::kNot, a + 5), Error);
    // Wrong operand count.
    EXPECT_THROW(nl.addGate(GateType::kNot, a, a), Error);
}

TEST(Netlist, FanoutCounts) {
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    const NetId x = nl.addGate(GateType::kXor, a, b);
    const NetId y = nl.addGate(GateType::kAnd, a, x);
    nl.markOutput("y", y);
    const auto fo = nl.fanouts();
    EXPECT_EQ(fo[a], 2u);
    EXPECT_EQ(fo[b], 1u);
    EXPECT_EQ(fo[x], 1u);
    EXPECT_EQ(fo[y], 0u);  // output ports don't count
}

TEST(Stats, LevelsAndInterconnect) {
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    const NetId c = nl.addInput("c");
    const NetId x = nl.addGate(GateType::kAnd, a, b);
    const NetId y = nl.addGate(GateType::kOr, x, c);
    const NetId z = nl.addGate(GateType::kNot, y);
    nl.markOutput("z", z);
    const auto s = computeStats(nl);
    EXPECT_EQ(s.numGates, 3u);
    EXPECT_EQ(s.levels, 3u);
    EXPECT_EQ(s.interconnect, 5u);  // 2 + 2 + 1 pins
    EXPECT_EQ(s.maxFanout, 1u);
    EXPECT_EQ(s.numInputs, 3u);
    EXPECT_EQ(s.gateHistogram.at("AND2"), 1u);
    EXPECT_FALSE(summary(s).empty());
}

TEST(Stats, InputFanoutTracked) {
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    NetId acc = b;
    for (int i = 0; i < 5; ++i) acc = nl.addGate(GateType::kAnd, a, acc);
    nl.markOutput("y", acc);
    const auto s = computeStats(nl);
    EXPECT_EQ(s.maxInputFanout, 5u);
}

TEST(GateTypeMeta, FaninAndNames) {
    EXPECT_EQ(fanin(GateType::kInput), 0);
    EXPECT_EQ(fanin(GateType::kNot), 1);
    EXPECT_EQ(fanin(GateType::kAnd), 2);
    EXPECT_EQ(fanin(GateType::kMux), 3);
    EXPECT_STREQ(gateTypeName(GateType::kXor), "XOR2");
}

}  // namespace
}  // namespace pd::netlist
