// Golden-file validation of the pd-batch-report-v1 document: a real
// batch's report is parsed with the repo's JSON parser and checked
// against the schema shipped in tests/data/ — required members present
// and every member of the right JSON type, recursively. The validator
// implements the subset of JSON Schema the golden file uses (type,
// required, properties, items, plus a "values" keyword for map-shaped
// objects), so schema drift in either direction fails loudly here.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "engine/engine.hpp"
#include "engine/report_json.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/json.hpp"

namespace pd {
namespace {

using util::JsonValue;

bool typeMatches(const JsonValue& v, const std::string& type) {
    if (type == "object") return v.isObject();
    if (type == "array") return v.isArray();
    if (type == "string") return v.isString();
    if (type == "number") return v.isNumber();
    if (type == "boolean") return v.isBool();
    if (type == "null") return v.isNull();
    ADD_FAILURE() << "schema names unknown type '" << type << "'";
    return false;
}

void validate(const JsonValue& value, const JsonValue& schema,
              const std::string& path) {
    if (const JsonValue* type = schema.find("type")) {
        if (!typeMatches(value, type->asString())) {
            ADD_FAILURE() << path << ": expected " << type->asString();
            return;
        }
    }
    if (const JsonValue* required = schema.find("required")) {
        for (const auto& name : required->asArray())
            if (value.find(name.asString()) == nullptr)
                ADD_FAILURE() << path << ": missing required member '"
                              << name.asString() << "'";
    }
    if (const JsonValue* props = schema.find("properties")) {
        for (const auto& [name, sub] : props->asObject())
            if (const JsonValue* member = value.find(name))
                validate(*member, sub, path + "." + name);
    }
    if (const JsonValue* values = schema.find("values")) {
        // Map-shaped object: every member validates against one schema.
        if (value.isObject())
            for (const auto& [name, member] : value.asObject())
                validate(member, *values, path + "." + name);
    }
    if (const JsonValue* items = schema.find("items")) {
        if (value.isArray()) {
            std::size_t i = 0;
            for (const auto& e : value.asArray())
                validate(e, *items, path + "[" + std::to_string(i++) + "]");
        }
    }
}

JsonValue loadSchema() {
    std::ifstream is(PD_REPORT_SCHEMA_JSON);
    EXPECT_TRUE(is.is_open())
        << "cannot open schema " << PD_REPORT_SCHEMA_JSON;
    std::ostringstream buf;
    buf << is.rdbuf();
    JsonValue schema;
    std::string error;
    EXPECT_TRUE(util::parseJson(buf.str(), schema, &error)) << error;
    return schema;
}

TEST(ReportSchemaTest, BatchReportMatchesGoldenSchema) {
    obs::resetMetricsForTest();

    engine::EngineOptions eopt;
    eopt.jobs = 2;
    engine::Engine engine(eopt);
    engine::JobSpec a;
    a.benchmark = "majority7";
    engine::JobSpec b;
    b.benchmark = "counter8";
    const auto results = engine.runBatch({a, b});
    ASSERT_EQ(results.size(), 2u);

    std::ostringstream os;
    engine::writeBatchReport(os, eopt, results, engine.cacheStats());

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(util::parseJson(os.str(), doc, &error))
        << error << "\nreport was:\n"
        << os.str();
    validate(doc, loadSchema(), "$");

    // Spot checks beyond shape: schema identity and the observability
    // block reflecting the batch that just ran.
    EXPECT_EQ(doc.find("schema")->asString(), "pd-batch-report-v1");
    EXPECT_EQ(doc.findPath("engine.build.schemas.report")->asString(),
              "pd-batch-report-v1");
    const JsonValue* counters = doc.findPath("observability.counters");
    ASSERT_NE(counters, nullptr);
    const JsonValue* misses = counters->find("cache.miss");
    ASSERT_NE(misses, nullptr) << "a cold batch must record cache misses";
    EXPECT_GE(misses->asInt(), 2);
    // Queries count at the membership entry point, so they fire even
    // when every query dies in the coverage pre-check (as it does for
    // these small benchmarks); "ring.member.solves" counts only the
    // rarer full solver builds.
    const JsonValue* queries = counters->find("ring.member.queries");
    ASSERT_NE(queries, nullptr);
    EXPECT_GT(queries->asInt(), 0);

    // The LRU-age census runs at the end of every batch. (Member-wise
    // lookup: findPath would split the dotted metric name itself.)
    const JsonValue* hists = doc.findPath("observability.histograms");
    ASSERT_NE(hists, nullptr);
    const JsonValue* age = hists->find("cache.entry.lru_age");
    ASSERT_NE(age, nullptr);
    EXPECT_EQ(age->find("count")->asInt(), 2);
    ASSERT_TRUE(age->find("buckets")->isArray());
    EXPECT_EQ(age->find("buckets")->asArray().size(), 33u);

    // The resilience block is always present and all-zero on a healthy
    // run with no armed faults.
    const JsonValue* resilience = doc.find("resilience");
    ASSERT_NE(resilience, nullptr);
    EXPECT_EQ(resilience->find("worker_crashes")->asInt(), 0);
    EXPECT_EQ(resilience->find("fallback_jobs")->asInt(), 0);
    EXPECT_EQ(resilience->find("interrupted_jobs")->asInt(), 0);
    EXPECT_TRUE(resilience->find("armed_faults")->asArray().empty());
}

TEST(ReportSchemaTest, BuildProvenanceIsPopulated) {
    engine::EngineOptions eopt;
    std::ostringstream os;
    engine::writeBatchReport(os, eopt, {}, engine::ResultCache::Stats{});
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(util::parseJson(os.str(), doc, &error)) << error;
    // The compiler is always identifiable; the git fields depend on the
    // build tree but must at least be non-empty strings.
    EXPECT_FALSE(doc.findPath("engine.build.compiler")->asString().empty());
    EXPECT_FALSE(doc.findPath("engine.build.git_hash")->asString().empty());
    EXPECT_EQ(doc.findPath("engine.build.schemas.shard_wire")->asInt(), 6);
    EXPECT_EQ(doc.findPath("engine.shard_transport")->asString(), "pipe");
    EXPECT_EQ(doc.findPath("engine.build.schemas.proof_store")->asString(),
              "pd-proof-v1");
}

}  // namespace
}  // namespace pd
