// Tests for dense truth tables and the Möbius transform: algebraic
// identities, round trips against the ANF engine, and the transform's
// self-inverse property across the word boundary (n > 6).
#include <gtest/gtest.h>

#include <random>

#include "anf/ops.hpp"
#include "tt/truthtable.hpp"

namespace pd {
namespace {

using tt::fromAnf;
using tt::mobius;
using tt::toAnf;
using tt::TruthTable;

std::vector<anf::Var> makeVars(int n) {
    std::vector<anf::Var> v;
    for (int i = 0; i < n; ++i) v.push_back(static_cast<anf::Var>(i));
    return v;
}

anf::Anf randomAnf(std::mt19937_64& rng, int n, int maxTerms) {
    std::vector<anf::Monomial> terms;
    const int t = 1 + static_cast<int>(rng() % static_cast<unsigned>(maxTerms));
    for (int q = 0; q < t; ++q) {
        anf::Monomial m;
        for (int i = 0; i < n; ++i)
            if (rng() % 3 == 0) m.insert(static_cast<anf::Var>(i));
        terms.push_back(m);
    }
    return anf::Anf::fromTerms(std::move(terms));
}

TEST(TruthTable, ConstantAndVarBasics) {
    const auto zero = TruthTable::constant(3, false);
    const auto one = TruthTable::constant(3, true);
    EXPECT_TRUE(zero.isZero());
    EXPECT_EQ(one.countOnes(), 8u);
    const auto x0 = TruthTable::var(3, 0);
    const auto x2 = TruthTable::var(3, 2);
    EXPECT_EQ(x0.countOnes(), 4u);
    EXPECT_EQ(x2.countOnes(), 4u);
    for (std::uint64_t r = 0; r < 8; ++r) {
        EXPECT_EQ(x0.get(r), (r & 1) != 0);
        EXPECT_EQ(x2.get(r), (r & 4) != 0);
    }
}

TEST(TruthTable, OperatorsMatchBitwiseSemantics) {
    const auto a = TruthTable::var(2, 0);
    const auto b = TruthTable::var(2, 1);
    const auto andT = a & b;
    const auto orT = a | b;
    const auto xorT = a ^ b;
    const auto notA = ~a;
    for (std::uint64_t r = 0; r < 4; ++r) {
        const bool av = a.get(r), bv = b.get(r);
        EXPECT_EQ(andT.get(r), av && bv);
        EXPECT_EQ(orT.get(r), av || bv);
        EXPECT_EQ(xorT.get(r), av != bv);
        EXPECT_EQ(notA.get(r), !av);
    }
}

TEST(TruthTable, ComplementStaysCanonicalBelowWordSize) {
    // ~ on n < 6 variables must not leak garbage into unused rows, or
    // operator== breaks.
    const auto t = ~TruthTable::constant(3, false);
    EXPECT_EQ(t, TruthTable::constant(3, true));
}

TEST(Mobius, SelfInverseSmall) {
    std::mt19937_64 rng(5);
    for (int round = 0; round < 30; ++round) {
        const int n = 1 + static_cast<int>(rng() % 6);
        TruthTable t(n);
        for (std::uint64_t r = 0; r < t.numRows(); ++r)
            t.set(r, (rng() & 1) != 0);
        EXPECT_EQ(mobius(mobius(t)), t) << "n=" << n;
    }
}

TEST(Mobius, SelfInverseAcrossWordBoundary) {
    std::mt19937_64 rng(6);
    for (const int n : {7, 8, 10}) {
        TruthTable t(n);
        for (std::uint64_t r = 0; r < t.numRows(); ++r)
            t.set(r, (rng() & 1) != 0);
        EXPECT_EQ(mobius(mobius(t)), t) << "n=" << n;
    }
}

TEST(Mobius, KnownSmallCases) {
    // f = x0 AND x1: value vector 1000 (row 3 only) → ANF x0·x1 has a
    // single coefficient at row 3.
    TruthTable andT(2);
    andT.set(3, true);
    const auto coeff = mobius(andT);
    EXPECT_TRUE(coeff.get(3));
    EXPECT_EQ(coeff.countOnes(), 1u);

    // f = x0 OR x1 = x0 ⊕ x1 ⊕ x0x1: coefficients at rows 1, 2, 3.
    TruthTable orT(2);
    orT.set(1, true);
    orT.set(2, true);
    orT.set(3, true);
    const auto c2 = mobius(orT);
    EXPECT_TRUE(c2.get(1));
    EXPECT_TRUE(c2.get(2));
    EXPECT_TRUE(c2.get(3));
    EXPECT_FALSE(c2.get(0));
}

TEST(AnfRoundTrip, FromAnfMatchesDirectEvaluation) {
    std::mt19937_64 rng(7);
    for (int round = 0; round < 40; ++round) {
        const int n = 1 + static_cast<int>(rng() % 8);
        const auto vars = makeVars(n);
        const auto e = randomAnf(rng, n, 16);
        const auto t = fromAnf(e, vars);
        for (std::uint64_t r = 0; r < t.numRows(); ++r) {
            anf::VarSet trueVars;
            for (int i = 0; i < n; ++i)
                if ((r >> i) & 1)
                    trueVars.insert(vars[static_cast<std::size_t>(i)]);
            bool expected = false;
            for (const auto& m : e.terms())
                if (m.subsetOf(trueVars)) expected = !expected;
            ASSERT_EQ(t.get(r), expected) << "round " << round << " row " << r;
        }
    }
}

TEST(AnfRoundTrip, ToAnfInvertsFromAnf) {
    std::mt19937_64 rng(8);
    for (int round = 0; round < 40; ++round) {
        const int n = 1 + static_cast<int>(rng() % 8);
        const auto vars = makeVars(n);
        const auto e = randomAnf(rng, n, 20);
        EXPECT_EQ(toAnf(fromAnf(e, vars), vars), e) << "round " << round;
    }
}

TEST(AnfRoundTrip, RingHomomorphism) {
    // fromAnf must map ⊕ to ^ and · to & — the Boolean-ring isomorphism
    // the whole paper stands on.
    std::mt19937_64 rng(9);
    const int n = 6;
    const auto vars = makeVars(n);
    for (int round = 0; round < 20; ++round) {
        const auto a = randomAnf(rng, n, 10);
        const auto b = randomAnf(rng, n, 10);
        EXPECT_EQ(fromAnf(a ^ b, vars), fromAnf(a, vars) ^ fromAnf(b, vars));
        EXPECT_EQ(fromAnf(a * b, vars), fromAnf(a, vars) & fromAnf(b, vars));
    }
}

TEST(AnfRoundTrip, UnmappedVariableThrows) {
    const auto vars = makeVars(2);
    const auto e = anf::Anf::var(static_cast<anf::Var>(5));
    EXPECT_THROW((void)fromAnf(e, vars), pd::Error);
}

TEST(TruthTable, VarAboveWordBoundary) {
    const auto x7 = TruthTable::var(8, 7);
    EXPECT_EQ(x7.countOnes(), 128u);
    EXPECT_FALSE(x7.get(0));
    EXPECT_TRUE(x7.get(128));
    EXPECT_TRUE(x7.get(255));
}

}  // namespace
}  // namespace pd
