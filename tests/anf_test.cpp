// Unit and property tests for the ANF (Reed-Muller) engine: Boolean-ring
// axioms, canonicity, and evaluation semantics (paper §4).
#include <gtest/gtest.h>

#include <random>

#include "anf/anf.hpp"
#include "anf/printer.hpp"

namespace pd::anf {
namespace {

Monomial mono(std::initializer_list<Var> vars) {
    Monomial m;
    for (const Var v : vars) m.insert(v);
    return m;
}

TEST(Monomial, BasicSetSemantics) {
    Monomial m;
    EXPECT_TRUE(m.isOne());
    EXPECT_EQ(m.degree(), 0u);
    m.insert(3);
    m.insert(200);
    EXPECT_EQ(m.degree(), 2u);
    EXPECT_TRUE(m.contains(3));
    EXPECT_TRUE(m.contains(200));
    EXPECT_FALSE(m.contains(4));
    m.erase(3);
    EXPECT_FALSE(m.contains(3));
}

TEST(Monomial, ProductIsIdempotentUnion) {
    const Monomial a = mono({1, 2});
    const Monomial b = mono({2, 3});
    const Monomial p = a * b;
    EXPECT_EQ(p, mono({1, 2, 3}));
    EXPECT_EQ(p * p, p);  // x^2 = x
}

TEST(Monomial, RestrictAndWithout) {
    const Monomial m = mono({1, 2, 5, 7});
    const Monomial mask = mono({2, 7, 9});
    EXPECT_EQ(m.restrictedTo(mask), mono({2, 7}));
    EXPECT_EQ(m.without(mask), mono({1, 5}));
    EXPECT_TRUE(m.intersects(mask));
    EXPECT_FALSE(m.without(mask).intersects(mask));
    EXPECT_TRUE(mono({2, 7}).subsetOf(m));
    EXPECT_FALSE(mono({2, 9}).subsetOf(m));
}

TEST(Monomial, OrderingIsGraded) {
    EXPECT_LT(mono({5}), mono({1, 2}));      // degree 1 < degree 2
    EXPECT_LT(Monomial{}, mono({0}));        // constant first
    EXPECT_NE(mono({1, 4}), mono({2, 3}));
}

TEST(Anf, ConstantsAndLiterals) {
    EXPECT_TRUE(Anf::zero().isZero());
    EXPECT_TRUE(Anf::one().isOne());
    EXPECT_TRUE(Anf::one().isConstant());
    const Anf x = Anf::var(7);
    EXPECT_TRUE(x.isLiteral());
    EXPECT_FALSE(x.literalNegated());
    EXPECT_EQ(x.literalVar(), 7u);
    const Anf nx = ~x;
    EXPECT_TRUE(nx.isLiteral());
    EXPECT_TRUE(nx.literalNegated());
    EXPECT_EQ(nx.literalVar(), 7u);
    EXPECT_FALSE((x ^ Anf::var(8)).isLiteral());
}

TEST(Anf, XorCancels) {
    const Anf x = Anf::var(1);
    EXPECT_TRUE((x ^ x).isZero());
    const Anf y = Anf::var(2);
    EXPECT_EQ(x ^ y ^ x, y);
}

TEST(Anf, FromTermsCanonicalizes) {
    const auto e = Anf::fromTerms(
        {mono({1}), mono({2}), mono({1}), mono({3}), mono({2}), mono({2})});
    // 1 and 2 collapse mod 2: x1 twice cancels, x2 three times survives.
    EXPECT_EQ(e, Anf::var(2) ^ Anf::var(3));
}

TEST(Anf, MultiplicationDistributesAndIdempotent) {
    const Anf a = Anf::var(1);
    const Anf b = Anf::var(2);
    const Anf c = Anf::var(3);
    EXPECT_EQ(a * (b ^ c), (a * b) ^ (a * c));
    EXPECT_EQ(a * a, a);
    // (a ^ b)^2 = a ^ b in a Boolean ring (char 2, idempotent).
    const Anf s = a ^ b;
    EXPECT_EQ(s * s, s);
    // (a^b)(a^b^1) = a ^ b ^ ab ^ ab ^ ... compute: (a^b)(1^a^b) = a^b ^ a ^ ab ^ ab ^ b = 0.
    EXPECT_TRUE((s * ~s).isZero());
}

TEST(Anf, LiteralCountAndDegree) {
    VarTable vt;
    const Var a = vt.addInput("a", 0, 0);
    const Var b = vt.addInput("b", 0, 1);
    const Var c = vt.addInput("c", 0, 2);
    const Anf e = (Anf::var(a) * Anf::var(b)) ^ Anf::var(c) ^ Anf::one();
    EXPECT_EQ(e.termCount(), 3u);
    EXPECT_EQ(e.literalCount(), 3u);  // ab contributes 2, c contributes 1
    EXPECT_EQ(e.degree(), 2u);
    EXPECT_TRUE(e.support().contains(a));
    EXPECT_TRUE(e.support().contains(c));
}

TEST(Anf, EvaluateMatchesDefinition) {
    const Anf e = (Anf::var(0) * Anf::var(1)) ^ Anf::var(2);
    Assignment all0;
    EXPECT_FALSE(e.evaluate(all0));
    EXPECT_TRUE(e.evaluate(mono({2})));
    EXPECT_TRUE(e.evaluate(mono({0, 1})));
    EXPECT_FALSE(e.evaluate(mono({0, 1, 2})));
}

TEST(Anf, PrinterRoundsNicely) {
    VarTable vt;
    const Var a = vt.addInput("a", 0, 0);
    const Var b = vt.addInput("b", 0, 1);
    EXPECT_EQ(toString(Anf::zero(), vt), "0");
    EXPECT_EQ(toString(Anf::one(), vt), "1");
    EXPECT_EQ(toString(Anf::var(a) * Anf::var(b) ^ Anf::one(), vt),
              "1 ^ a*b");
}

// ---- Ring axioms as randomized properties ---------------------------------

Anf randomAnf(std::mt19937_64& rng, int nVars, int maxTerms) {
    std::vector<Monomial> terms;
    const int n = static_cast<int>(rng() % static_cast<unsigned>(maxTerms));
    for (int t = 0; t < n; ++t) {
        Monomial m;
        for (int v = 0; v < nVars; ++v)
            if (rng() & 1u) m.insert(static_cast<Var>(v));
        terms.push_back(m);
    }
    return Anf::fromTerms(std::move(terms));
}

class AnfRingAxioms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnfRingAxioms, HoldOnRandomElements) {
    std::mt19937_64 rng(GetParam());
    for (int iter = 0; iter < 50; ++iter) {
        const Anf a = randomAnf(rng, 6, 12);
        const Anf b = randomAnf(rng, 6, 12);
        const Anf c = randomAnf(rng, 6, 12);
        // Commutativity / associativity of both operations.
        EXPECT_EQ(a ^ b, b ^ a);
        EXPECT_EQ((a ^ b) ^ c, a ^ (b ^ c));
        EXPECT_EQ(a * b, b * a);
        EXPECT_EQ((a * b) * c, a * (b * c));
        // Distributivity.
        EXPECT_EQ(a * (b ^ c), (a * b) ^ (a * c));
        // Identities and characteristic 2.
        EXPECT_EQ(a ^ Anf::zero(), a);
        EXPECT_EQ(a * Anf::one(), a);
        EXPECT_TRUE((a ^ a).isZero());
        EXPECT_EQ(a * a, a);  // idempotence
    }
}

TEST_P(AnfRingAxioms, EvaluationIsAHomomorphism) {
    std::mt19937_64 rng(GetParam() ^ 0xabcdef);
    for (int iter = 0; iter < 50; ++iter) {
        const Anf a = randomAnf(rng, 6, 10);
        const Anf b = randomAnf(rng, 6, 10);
        Monomial assign;
        for (Var v = 0; v < 6; ++v)
            if (rng() & 1u) assign.insert(v);
        EXPECT_EQ((a ^ b).evaluate(assign),
                  a.evaluate(assign) != b.evaluate(assign));
        EXPECT_EQ((a * b).evaluate(assign),
                  a.evaluate(assign) && b.evaluate(assign));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnfRingAxioms,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace pd::anf
