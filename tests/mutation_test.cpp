// Failure injection: the verification stack (simulation-based reference
// checking and SAT miters) must detect single-gate mutations. A checker
// that never fires is worthless — these tests mutate real circuits gate
// by gate and require detection, which also measures that our test
// vectors are not systematically blind.
#include <gtest/gtest.h>

#include <random>

#include "circuits/adder.hpp"
#include "circuits/lzd.hpp"
#include "circuits/manual.hpp"
#include "circuits/prefix.hpp"
#include "sat/equiv.hpp"
#include "sim/equivalence.hpp"

namespace pd {
namespace {

/// Rebuilds `nl` with the gate driving `victim` replaced by a different
/// gate type over the same operands. Returns nullopt when the victim is
/// not a mutable logic gate.
std::optional<netlist::Netlist> mutateGate(const netlist::Netlist& nl,
                                           netlist::NetId victim) {
    using netlist::GateType;
    const auto& g = nl.gate(victim);
    GateType replacement;
    switch (g.type) {
        case GateType::kAnd:
            replacement = GateType::kOr;
            break;
        case GateType::kOr:
            replacement = GateType::kAnd;
            break;
        case GateType::kXor:
            replacement = GateType::kXnor;
            break;
        case GateType::kXnor:
            replacement = GateType::kXor;
            break;
        case GateType::kNand:
            replacement = GateType::kNor;
            break;
        case GateType::kNor:
            replacement = GateType::kNand;
            break;
        case GateType::kNot:
            replacement = GateType::kBuf;
            break;
        default:
            return std::nullopt;
    }
    netlist::Netlist out;
    for (netlist::NetId id = 0; id < nl.numNets(); ++id) {
        const auto& gate = nl.gate(id);
        if (gate.type == GateType::kInput) {
            // Inputs must be re-registered by name, in order.
            std::size_t idx = 0;
            while (nl.inputs()[idx] != id) ++idx;
            out.addInput(nl.inputName(idx));
            continue;
        }
        const GateType t = id == victim ? replacement : gate.type;
        out.addGate(t, gate.in[0], gate.in[1], gate.in[2]);
    }
    for (const auto& port : nl.outputs()) out.markOutput(port.name, port.net);
    return out;
}

/// Nets whose mutation can change an output (reachable from an output).
std::vector<netlist::NetId> liveNets(const netlist::Netlist& nl) {
    std::vector<char> live(nl.numNets(), 0);
    for (const auto& port : nl.outputs()) live[port.net] = 1;
    for (netlist::NetId id = nl.numNets(); id-- > 0;) {
        if (!live[id]) continue;
        const auto& g = nl.gate(id);
        for (int i = 0; i < netlist::fanin(g.type); ++i) live[g.in[i]] = 1;
    }
    std::vector<netlist::NetId> out;
    for (netlist::NetId id = 0; id < nl.numNets(); ++id)
        if (live[id]) out.push_back(id);
    return out;
}

TEST(MutationInjection, SatMiterCatchesEveryLiveMutation) {
    // Every functionally visible single-gate mutation must be refuted.
    const auto nl = circuits::koggeStoneAdder(6);
    int mutations = 0, detected = 0, silent = 0;
    for (const netlist::NetId victim : liveNets(nl)) {
        const auto mutant = mutateGate(nl, victim);
        if (!mutant) continue;
        ++mutations;
        const auto res = sat::checkEquivalentSat(nl, *mutant);
        if (res.status == sat::EquivCheckResult::Status::kDifferent)
            ++detected;
        else
            ++silent;  // mutation was functionally invisible (redundancy)
    }
    ASSERT_GT(mutations, 20);
    // The prefix adder has no redundant logic: every mutation must show.
    EXPECT_EQ(silent, 0) << "undetected mutations out of " << mutations;
    EXPECT_EQ(detected, mutations);
}

TEST(MutationInjection, ReferenceCheckerCatchesMutationsExhaustively) {
    const auto bench = circuits::makeAdder(5);
    const auto nl = circuits::rcaAdder(5);
    // Sanity: the unmutated netlist passes.
    ASSERT_TRUE(sim::checkAgainstReference(nl, bench.ports,
                                           bench.outputNames,
                                           bench.reference)
                    .equivalent);
    int mutations = 0, detected = 0;
    for (const netlist::NetId victim : liveNets(nl)) {
        const auto mutant = mutateGate(nl, victim);
        if (!mutant) continue;
        ++mutations;
        const auto res = sim::checkAgainstReference(
            *mutant, bench.ports, bench.outputNames, bench.reference);
        if (!res.equivalent) {
            ++detected;
            EXPECT_FALSE(res.message.empty());  // counterexample reported
        }
    }
    ASSERT_GT(mutations, 10);
    EXPECT_EQ(detected, mutations);  // 10 input bits: exhaustive, no escape
}

TEST(MutationInjection, RandomizedCheckerCatchesMutationsOnWideCircuit) {
    // 48 input bits force the randomized path; single-gate mutations of an
    // adder flip outputs for a large input fraction, so randomized + corner
    // vectors must catch them all.
    const auto bench = circuits::makeAdder(24);
    const auto nl = circuits::rcaAdder(24);
    std::mt19937_64 rng(3);
    const auto nets = liveNets(nl);
    int mutations = 0, detected = 0;
    for (int trial = 0; trial < 25 && mutations < 15; ++trial) {
        const netlist::NetId victim = nets[rng() % nets.size()];
        const auto mutant = mutateGate(nl, victim);
        if (!mutant) continue;
        ++mutations;
        sim::EquivOptions opt;
        opt.randomBatches = 64;
        const auto res = sim::checkAgainstReference(
            *mutant, bench.ports, bench.outputNames, bench.reference, opt);
        if (!res.equivalent) ++detected;
    }
    ASSERT_GT(mutations, 5);
    EXPECT_EQ(detected, mutations);
}

}  // namespace
}  // namespace pd
