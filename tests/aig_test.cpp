// Tests for the And-Inverter Graph: hashing/folding invariants, netlist
// round trips (simulation + SAT verified), garbage collection, and
// depth-reducing balance.
#include <gtest/gtest.h>

#include <random>

#include "aig/aig.hpp"
#include "circuits/manual.hpp"
#include "circuits/prefix.hpp"
#include "netlist/builder.hpp"
#include "netlist/stats.hpp"
#include "sat/equiv.hpp"
#include "sim/simulator.hpp"

namespace pd {
namespace {

using aig::Aig;
using aig::balance;
using aig::Edge;
using aig::fromNetlist;
using aig::toNetlist;

TEST(Aig, ConstantFolding) {
    Aig g;
    const Edge a = g.addInput("a");
    EXPECT_EQ(g.mkAnd(a, g.constFalse()), g.constFalse());
    EXPECT_EQ(g.mkAnd(a, g.constTrue()), a);
    EXPECT_EQ(g.mkAnd(a, a), a);
    EXPECT_EQ(g.mkAnd(a, !a), g.constFalse());
    EXPECT_EQ(g.numAnds(), 0u);
}

TEST(Aig, StructuralHashing) {
    Aig g;
    const Edge a = g.addInput("a");
    const Edge b = g.addInput("b");
    const Edge x = g.mkAnd(a, b);
    const Edge y = g.mkAnd(b, a);  // commuted
    EXPECT_EQ(x, y);
    EXPECT_EQ(g.numAnds(), 1u);
    const Edge z = g.mkAnd(!a, b);
    EXPECT_FALSE(z == x);
    EXPECT_EQ(g.numAnds(), 2u);
}

TEST(Aig, DerivedOperators) {
    Aig g;
    const Edge a = g.addInput("a");
    const Edge b = g.addInput("b");
    g.markOutput("or", g.mkOr(a, b));
    g.markOutput("xor", g.mkXor(a, b));
    g.markOutput("mux", g.mkMux(a, b, !b));
    const auto nl = toNetlist(g);
    sim::Simulator s(nl);
    for (int av = 0; av < 2; ++av)
        for (int bv = 0; bv < 2; ++bv) {
            std::vector<std::uint64_t> in{av ? ~0ull : 0, bv ? ~0ull : 0};
            const auto o = s.run(in);
            EXPECT_EQ(o[0] & 1, static_cast<std::uint64_t>(av | bv));
            EXPECT_EQ(o[1] & 1, static_cast<std::uint64_t>(av ^ bv));
            EXPECT_EQ(o[2] & 1, static_cast<std::uint64_t>(av ? !bv : bv));
        }
}

netlist::Netlist sampleNetlist() {
    netlist::Netlist nl;
    netlist::Builder b(nl);
    const auto a = b.input("a");
    const auto c = b.input("b");
    const auto d = b.input("c");
    nl.markOutput("f", b.mkMux(a, b.mkXor(c, d), b.mkNor(c, d)));
    nl.markOutput("g", b.mkXnor(a, b.mkNand(c, d)));
    return nl;
}

TEST(Aig, NetlistRoundTripPreservesFunction) {
    const auto nl = sampleNetlist();
    const auto back = toNetlist(fromNetlist(nl));
    const auto res = sat::checkEquivalentSat(nl, back);
    EXPECT_EQ(res.status, sat::EquivCheckResult::Status::kEquivalent);
}

TEST(Aig, RoundTripOnRealCircuits) {
    for (const auto& nl :
         {circuits::koggeStoneAdder(8), circuits::oklobdzijaLzd(16),
          circuits::csaAdder3(6, true)}) {
        const auto back = toNetlist(fromNetlist(nl));
        const auto res = sat::checkEquivalentSat(nl, back);
        EXPECT_EQ(res.status, sat::EquivCheckResult::Status::kEquivalent);
    }
}

TEST(Aig, GarbageCollectDropsDeadNodes) {
    Aig g;
    const Edge a = g.addInput("a");
    const Edge b = g.addInput("b");
    (void)g.mkAnd(a, b);            // dead
    const Edge live = g.mkAnd(!a, b);
    (void)g.mkAnd(live, a);         // dead
    g.markOutput("f", live);
    g.garbageCollect();
    EXPECT_EQ(g.numAnds(), 1u);
    // The function must survive compaction.
    const auto nl = toNetlist(g);
    sim::Simulator s(nl);
    const std::vector<std::uint64_t> in{0, ~0ull};
    EXPECT_EQ(s.run(in)[0], ~0ull);  // !a & b with a=0,b=1
}

TEST(Aig, BalanceReducesChainDepth) {
    // A left-leaning 16-operand AND chain must balance to ~log2 depth.
    Aig g;
    Edge acc = g.constTrue();
    for (int i = 0; i < 16; ++i) acc = g.mkAnd(acc, g.addInput("x" + std::to_string(i)));
    g.markOutput("f", acc);
    EXPECT_EQ(g.depth(), 15u);
    const Aig bal = balance(g);
    EXPECT_LE(bal.depth(), 4u);
    const auto res = sat::checkEquivalentSat(toNetlist(g), toNetlist(bal));
    EXPECT_EQ(res.status, sat::EquivCheckResult::Status::kEquivalent);
}

TEST(Aig, BalancePreservesFunctionOnRealCircuits) {
    for (const auto& nl :
         {circuits::rcaAdder(8), circuits::flatLzd(8),
          circuits::subtractComparator(6)}) {
        const auto g = fromNetlist(nl);
        const auto bal = balance(g);
        const auto res = sat::checkEquivalentSat(toNetlist(g), toNetlist(bal));
        EXPECT_EQ(res.status, sat::EquivCheckResult::Status::kEquivalent);
        EXPECT_LE(bal.depth(), g.depth());
    }
}

TEST(Aig, BalanceNeverIncreasesDepthOnRandomGraphs) {
    std::mt19937_64 rng(55);
    for (int round = 0; round < 20; ++round) {
        Aig g;
        std::vector<Edge> pool;
        for (int i = 0; i < 6; ++i)
            pool.push_back(g.addInput("x" + std::to_string(i)));
        for (int step = 0; step < 30; ++step) {
            Edge a = pool[rng() % pool.size()];
            Edge b = pool[rng() % pool.size()];
            if (rng() & 1) a = !a;
            if (rng() & 1) b = !b;
            pool.push_back(g.mkAnd(a, b));
        }
        g.markOutput("f", pool.back());
        const auto bal = balance(g);
        EXPECT_LE(bal.depth(), g.depth()) << "round " << round;
        const auto res =
            sat::checkEquivalentSat(toNetlist(g), toNetlist(bal));
        ASSERT_EQ(res.status, sat::EquivCheckResult::Status::kEquivalent)
            << "round " << round;
    }
}

}  // namespace
}  // namespace pd
