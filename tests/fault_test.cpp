// Fault-injection registry tests: spec grammar, trigger semantics
// (nth-hit, every-k, seeded-probabilistic determinism), plan arming
// (validate-then-arm, env idempotence), and the PD_FAULT macro's
// disarmed contract. The sites themselves are exercised end-to-end by
// persist_test / shard_test and scripts/check_chaos.py.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/fault/fault.hpp"

namespace pd::fault {
namespace {

/// Every test leaves the registry disarmed — sites are process-global.
class FaultTest : public ::testing::Test {
protected:
    void SetUp() override { disarmAllForTest(); }
    void TearDown() override {
        disarmAllForTest();
        ::unsetenv(kFaultsEnv);
    }
};

TEST_F(FaultTest, ParsesEveryTriggerKind) {
    Spec s;
    ASSERT_TRUE(parseSpec("n3", s, nullptr));
    EXPECT_EQ(s.kind, Spec::Kind::kNth);
    EXPECT_EQ(s.n, 3u);

    ASSERT_TRUE(parseSpec("e2", s, nullptr));
    EXPECT_EQ(s.kind, Spec::Kind::kEvery);
    EXPECT_EQ(s.n, 2u);

    ASSERT_TRUE(parseSpec("p0.25", s, nullptr));
    EXPECT_EQ(s.kind, Spec::Kind::kProb);
    EXPECT_DOUBLE_EQ(s.probability, 0.25);
    EXPECT_EQ(s.seed, 0u);

    ASSERT_TRUE(parseSpec("p0.5@42", s, nullptr));
    EXPECT_DOUBLE_EQ(s.probability, 0.5);
    EXPECT_EQ(s.seed, 42u);
}

TEST_F(FaultTest, RejectsMalformedSpecsWithAMessage) {
    Spec s;
    std::string error;
    for (const char* bad : {"", "x3", "n", "n0", "nfoo", "e0", "p", "p1.5",
                            "p-0.1", "pabc", "p0.5@", "p0.5@x", "n3junk"}) {
        error.clear();
        EXPECT_FALSE(parseSpec(bad, s, &error)) << "'" << bad << "'";
        EXPECT_FALSE(error.empty()) << "'" << bad << "'";
    }
}

TEST_F(FaultTest, NthFiresExactlyOnce) {
    ASSERT_TRUE(armPlan("test.nth:n3"));
    Site& s = site("test.nth");
    std::size_t fires = 0;
    for (int i = 0; i < 10; ++i) fires += s.shouldFire() ? 1 : 0;
    EXPECT_EQ(fires, 1u);
    EXPECT_EQ(s.fires(), 1u);
    EXPECT_EQ(s.hits(), 10u);
}

TEST_F(FaultTest, EveryKFiresOnTheCadence) {
    ASSERT_TRUE(armPlan("test.every:e3"));
    Site& s = site("test.every");
    std::vector<bool> pattern;
    for (int i = 0; i < 9; ++i) pattern.push_back(s.shouldFire());
    const std::vector<bool> expect = {false, false, true, false, false,
                                      true, false, false, true};
    EXPECT_EQ(pattern, expect);
}

TEST_F(FaultTest, ProbabilisticSequencesReplayUnderTheSameSeed) {
    const auto draw = [](const char* plan, const char* name, int n) {
        disarmAllForTest();
        EXPECT_TRUE(armPlan(plan));
        Site& s = site(name);
        std::vector<bool> out;
        for (int i = 0; i < n; ++i) out.push_back(s.shouldFire());
        return out;
    };
    const auto a = draw("test.prob:p0.5@7", "test.prob", 64);
    const auto b = draw("test.prob:p0.5@7", "test.prob", 64);
    EXPECT_EQ(a, b) << "same (site, seed) must replay bit for bit";
    const auto c = draw("test.prob:p0.5@8", "test.prob", 64);
    EXPECT_NE(a, c) << "a different seed must draw a different sequence";

    // Degenerate probabilities are exact, not approximate.
    const auto never = draw("test.prob:p0@1", "test.prob", 64);
    EXPECT_EQ(std::count(never.begin(), never.end(), true), 0);
    const auto always = draw("test.prob:p1@1", "test.prob", 64);
    EXPECT_EQ(std::count(always.begin(), always.end(), true), 64);
}

TEST_F(FaultTest, DisarmedSitesNeverFireOrCount) {
    Site& s = site("test.disarmed");
    EXPECT_FALSE(s.armed());
    for (int i = 0; i < 5; ++i) EXPECT_FALSE(s.shouldFire());
    EXPECT_EQ(s.hits(), 0u);
    EXPECT_FALSE(PD_FAULT("test.disarmed"));
}

TEST_F(FaultTest, MalformedPlansArmNothing) {
    std::string error;
    EXPECT_FALSE(armPlan("test.good:n1,test.bad:q9", &error));
    EXPECT_FALSE(error.empty());
    // Validate-then-arm: the well-formed head must not be live either.
    EXPECT_FALSE(site("test.good").armed());
    EXPECT_TRUE(armedPlans().empty());

    EXPECT_FALSE(armPlan("no-colon", &error));
    EXPECT_FALSE(armPlan(":n1", &error));
    EXPECT_FALSE(armPlan("site:", &error));
}

TEST_F(FaultTest, ArmedPlansReportCanonicalSortedItems) {
    ASSERT_TRUE(armPlan("test.b:e2,test.a:n1"));
    const auto plans = armedPlans();
    ASSERT_EQ(plans.size(), 2u);
    EXPECT_EQ(plans[0], "test.a:n1");
    EXPECT_EQ(plans[1], "test.b:e2");
    disarmAllForTest();
    EXPECT_TRUE(armedPlans().empty());
}

TEST_F(FaultTest, RearmingResetsCounters) {
    ASSERT_TRUE(armPlan("test.rearm:n1"));
    Site& s = site("test.rearm");
    EXPECT_TRUE(s.shouldFire());
    EXPECT_FALSE(s.shouldFire());
    ASSERT_TRUE(armPlan("test.rearm:n1"));
    EXPECT_EQ(s.hits(), 0u);
    EXPECT_TRUE(s.shouldFire()) << "re-arming restarts the hit count";
}

TEST_F(FaultTest, EnvArmingIsIdempotentPerValue) {
    ::setenv(kFaultsEnv, "test.env:n2", 1);
    armFromEnv();
    Site& s = site("test.env");
    EXPECT_TRUE(s.armed());
    EXPECT_FALSE(s.shouldFire());  // hit 1 of n2
    // A repeat call with the same value must not re-arm (which would
    // reset the count and shift the schedule).
    armFromEnv();
    EXPECT_TRUE(s.shouldFire()) << "hit 2 fires; env re-read reset it";
    // A malformed value is ignored, not fatal, and disturbs nothing.
    ::setenv(kFaultsEnv, "broken", 1);
    armFromEnv();
    EXPECT_TRUE(s.armed());
}

TEST_F(FaultTest, SnapshotSeesEverySite) {
    ASSERT_TRUE(armPlan("test.snap:n1"));
    (void)site("test.snap").shouldFire();
    bool found = false;
    for (const auto& stats : snapshot()) {
        if (stats.name != "test.snap") continue;
        found = true;
        EXPECT_TRUE(stats.armed);
        EXPECT_EQ(stats.hits, 1u);
        EXPECT_EQ(stats.fires, 1u);
    }
    EXPECT_TRUE(found);
}

}  // namespace
}  // namespace pd::fault
