// Tests for substitution, cofactors, group splitting, derivatives and the
// truth-table (Möbius) constructor.
#include <gtest/gtest.h>

#include <random>

#include "anf/ops.hpp"
#include "anf/parser.hpp"

namespace pd::anf {
namespace {

struct Ctx {
    VarTable vt;
    Anf operator()(std::string_view s) { return parse(s, vt); }
};

TEST(Substitute, ReplacesSimultaneously) {
    Ctx c;
    const Anf e = c("a*b ^ c");
    const Var a = *c.vt.find("a");
    const Var b2 = *c.vt.find("b");
    std::unordered_map<Var, Anf> map;
    map[a] = c("b ^ 1");  // a := b ^ 1  (not re-substituted)
    map[b2] = c("c");     // b := c
    // a*b ^ c -> (b^1)*c ^ c = b*c ^ c ^ c = b*c.
    EXPECT_EQ(substitute(e, map), c("b*c"));
}

TEST(Substitute, UntouchedMonomialsPassThrough) {
    Ctx c;
    const Anf e = c("x*y ^ z ^ 1");
    std::unordered_map<Var, Anf> map;
    map[*c.vt.find("z")] = c("x");
    EXPECT_EQ(substitute(e, map), c("x*y ^ x ^ 1"));
}

TEST(Cofactor, ShannonExpansionHolds) {
    Ctx c;
    const Anf e = c("a*b ^ b*d ^ a ^ 1");
    const Var a = *c.vt.find("a");
    const Anf f1 = cofactor(e, a, true);
    const Anf f0 = cofactor(e, a, false);
    EXPECT_EQ(f1, c("b ^ b*d"));      // a=1: b ^ bd ^ 1 ^ 1
    EXPECT_EQ(f0, c("b*d ^ 1"));
    // e == a*f1 ^ (1^a)*f0.
    EXPECT_EQ((Anf::var(a) * f1) ^ (~Anf::var(a) * f0), e);
}

TEST(Derivative, DetectsDependence) {
    Ctx c;
    const Anf e = c("a*b ^ c");
    EXPECT_EQ(derivative(e, *c.vt.find("a")), c("b"));
    EXPECT_EQ(derivative(e, *c.vt.find("c")), Anf::one());
    const Var unused = c.vt.addInput("u", -1, -1);
    EXPECT_TRUE(derivative(e, unused).isZero());
}

TEST(SplitByGroup, PartitionsExactly) {
    Ctx c;
    const Anf e = c("a*x ^ b*y ^ x*y ^ 1");
    VarSet group;
    group.insert(*c.vt.find("a"));
    group.insert(*c.vt.find("b"));
    const auto split = splitByGroup(e, group);
    EXPECT_EQ(split.touching, c("a*x ^ b*y"));
    EXPECT_EQ(split.untouched, c("x*y ^ 1"));
    EXPECT_EQ(split.touching ^ split.untouched, e);
}

TEST(XorAll, FoldsList) {
    Ctx c;
    const std::vector<Anf> list = {c("a"), c("b"), c("a ^ c")};
    EXPECT_EQ(xorAll(list), c("b ^ c"));
}

TEST(FromTruthTable, MatchesKnownForms) {
    VarTable vt;
    std::vector<Var> v;
    for (int i = 0; i < 3; ++i)
        v.push_back(vt.addInput("x" + std::to_string(i), 0, i));
    // Majority of three: x0x1 ^ x0x2 ^ x1x2.
    const Anf maj = fromTruthTable(v, [](const Assignment& a) {
        int n = 0;
        for (Var q = 0; q < 3; ++q)
            if (a.contains(q)) ++n;
        return n >= 2;
    });
    const Anf expect = (Anf::var(v[0]) * Anf::var(v[1])) ^
                       (Anf::var(v[0]) * Anf::var(v[2])) ^
                       (Anf::var(v[1]) * Anf::var(v[2]));
    EXPECT_EQ(maj, expect);
    // OR of three = 1 ^ (1^x0)(1^x1)(1^x2).
    const Anf orf = fromTruthTable(v, [](const Assignment& a) {
        return a.contains(0) || a.contains(1) || a.contains(2);
    });
    const Anf expOr =
        ~(~Anf::var(v[0]) * ~Anf::var(v[1]) * ~Anf::var(v[2]));
    EXPECT_EQ(orf, expOr);
}

// Property: fromTruthTable inverts evaluate.
class MobiusRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MobiusRoundTrip, EvaluateRecoversOracle) {
    std::mt19937_64 rng(GetParam());
    VarTable vt;
    std::vector<Var> v;
    for (int i = 0; i < 5; ++i)
        v.push_back(vt.addInput("x" + std::to_string(i), 0, i));
    std::vector<bool> table(32);
    for (auto&& b : table) b = rng() & 1u;
    const Anf e = fromTruthTable(v, [&](const Assignment& a) {
        std::size_t idx = 0;
        for (int i = 0; i < 5; ++i)
            if (a.contains(v[static_cast<std::size_t>(i)]))
                idx |= std::size_t{1} << i;
        return static_cast<bool>(table[idx]);
    });
    for (std::size_t idx = 0; idx < 32; ++idx) {
        Assignment a;
        for (int i = 0; i < 5; ++i)
            if ((idx >> i) & 1u) a.insert(v[static_cast<std::size_t>(i)]);
        EXPECT_EQ(e.evaluate(a), table[idx]) << "at " << idx;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MobiusRoundTrip,
                         ::testing::Values(7u, 77u, 777u, 7777u));

}  // namespace
}  // namespace pd::anf
