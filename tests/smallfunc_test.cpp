// Tests for truth-table local synthesis: Quine-McCluskey prime
// generation, greedy covering, and functional correctness of the
// synthesized cones against direct ANF evaluation.
#include <gtest/gtest.h>

#include <random>

#include "anf/ops.hpp"
#include "netlist/builder.hpp"
#include "sim/simulator.hpp"
#include "synth/smallfunc.hpp"

namespace pd {
namespace {

using synth::coverGreedy;
using synth::Implicant;
using synth::primeImplicants;

TEST(QuineMcCluskey, SingleMintermIsItsOwnPrime) {
    const auto primes = primeImplicants({0b101}, 3);
    ASSERT_EQ(primes.size(), 1u);
    EXPECT_EQ(primes[0].mask, 0b111u);
    EXPECT_EQ(primes[0].value, 0b101u);
}

TEST(QuineMcCluskey, AdjacentMintermsMerge) {
    // f = m0 + m1 over 2 vars = ~x1 (x0 drops out).
    const auto primes = primeImplicants({0b00, 0b01}, 2);
    ASSERT_EQ(primes.size(), 1u);
    EXPECT_EQ(primes[0].mask, 0b10u);
    EXPECT_EQ(primes[0].value, 0b00u);
}

TEST(QuineMcCluskey, FullOnSetMergesToTautology) {
    const auto primes = primeImplicants({0, 1, 2, 3}, 2);
    ASSERT_EQ(primes.size(), 1u);
    EXPECT_EQ(primes[0].mask, 0u);  // no care literals: constant 1
}

TEST(QuineMcCluskey, XorHasNoMergedPrimes) {
    // XOR's minterms are pairwise non-adjacent: every prime is a minterm.
    const auto primes = primeImplicants({0b01, 0b10}, 2);
    EXPECT_EQ(primes.size(), 2u);
    for (const auto& p : primes) EXPECT_EQ(p.mask, 0b11u);
}

TEST(QuineMcCluskey, ClassicTextbookExample) {
    // f(w,x,y,z) = Σ(0,1,2,5,6,7,8,9,10,14), a standard QM exercise.
    const std::vector<std::uint32_t> on{0, 1, 2, 5, 6, 7, 8, 9, 10, 14};
    const auto primes = primeImplicants(on, 4);
    const auto cover = coverGreedy(primes, on, 4);
    // Verify the cover is exact: covers all of ON, nothing of OFF.
    for (std::uint32_t m = 0; m < 16; ++m) {
        const bool inOn = std::find(on.begin(), on.end(), m) != on.end();
        bool covered = false;
        for (const auto& c : cover)
            covered |= (m & c.mask) == c.value;
        EXPECT_EQ(covered, inOn) << "minterm " << m;
    }
    EXPECT_LE(cover.size(), 5u);  // minimal SOP needs 4-5 cubes
}

TEST(QuineMcCluskey, CoverIsExactOnRandomFunctions) {
    std::mt19937_64 rng(11);
    for (int round = 0; round < 50; ++round) {
        const int n = 3 + static_cast<int>(rng() % 4);  // 3..6 vars
        std::vector<std::uint32_t> on;
        for (std::uint32_t m = 0; m < (1u << n); ++m)
            if (rng() & 1) on.push_back(m);
        if (on.empty()) continue;
        const auto cover = coverGreedy(primeImplicants(on, n), on, n);
        for (std::uint32_t m = 0; m < (1u << n); ++m) {
            const bool inOn = std::find(on.begin(), on.end(), m) != on.end();
            bool covered = false;
            for (const auto& c : cover)
                covered |= (m & c.mask) == c.value;
            ASSERT_EQ(covered, inOn)
                << "round " << round << " minterm " << m;
        }
    }
}

// ---------------------------------------------------------------------------
// synthSmallAnf functional checks
// ---------------------------------------------------------------------------

/// Builds a single-output netlist for `e` and compares it to direct ANF
/// evaluation on every assignment of its support.
void expectMatchesAnf(const anf::Anf& e, const std::vector<anf::Var>& vars) {
    netlist::Netlist nl;
    netlist::Builder b(nl);
    std::vector<netlist::NetId> nets;
    for (const anf::Var v : vars) {
        while (nets.size() < v) nets.push_back(netlist::kNoNet);
        nets.push_back(b.input("x" + std::to_string(v)));
    }
    nl.markOutput("f", synth::synthSmallAnf(b, e, nets));

    sim::Simulator sim(nl);
    const std::size_t n = nl.inputs().size();
    ASSERT_LE(n, 16u);
    // Exhaustive via 64-way packing: inputs indexed in creation order.
    for (std::uint64_t base = 0; base < (1ull << n); base += 64) {
        std::vector<std::uint64_t> words(n, 0);
        for (int lane = 0; lane < 64; ++lane) {
            const std::uint64_t assign = base + static_cast<std::uint64_t>(lane);
            for (std::size_t i = 0; i < n; ++i)
                if ((assign >> i) & 1)
                    words[i] |= 1ull << lane;
        }
        const auto out = sim.run(words);
        for (int lane = 0; lane < 64 && base + lane < (1ull << n); ++lane) {
            const std::uint64_t assign = base + static_cast<std::uint64_t>(lane);
            anf::VarSet trueVars;
            for (std::size_t i = 0; i < n; ++i)
                if ((assign >> i) & 1) trueVars.insert(vars[i]);
            bool expected = false;
            for (const auto& m : e.terms())
                if (m.subsetOf(trueVars)) expected = !expected;
            EXPECT_EQ((out[0] >> lane) & 1, expected ? 1u : 0u)
                << "assignment " << assign;
        }
    }
}

std::vector<anf::Var> makeVars(int n) {
    std::vector<anf::Var> v;
    for (int i = 0; i < n; ++i) v.push_back(static_cast<anf::Var>(i));
    return v;
}

TEST(SynthSmallAnf, Constants) {
    netlist::Netlist nl;
    netlist::Builder b(nl);
    const std::vector<netlist::NetId> none;
    nl.markOutput("zero", synth::synthSmallAnf(b, anf::Anf::zero(), none));
    nl.markOutput("one", synth::synthSmallAnf(b, anf::Anf::one(), none));
    sim::Simulator sim(nl);
    const std::vector<std::uint64_t> in;
    EXPECT_EQ(sim.run(in)[0], 0ull);
    EXPECT_EQ(sim.run(in)[1], ~0ull);
}

TEST(SynthSmallAnf, SingleLiteral) {
    const auto vars = makeVars(1);
    expectMatchesAnf(anf::Anf::var(vars[0]), vars);
}

TEST(SynthSmallAnf, ParityStaysXor) {
    // Parity has no compact SOP — the cost model must keep the ANF form.
    const auto vars = makeVars(5);
    anf::Anf parity;
    for (const auto v : vars) parity ^= anf::Anf::var(v);
    netlist::Netlist nl;
    netlist::Builder b(nl);
    std::vector<netlist::NetId> nets;
    for (const anf::Var v : vars)
        nets.push_back(b.input("x" + std::to_string(v)));
    nl.markOutput("f", synth::synthSmallAnf(b, parity, nets));
    std::size_t xors = 0;
    for (netlist::NetId id = 0; id < nl.numNets(); ++id)
        if (nl.gate(id).type == netlist::GateType::kXor) ++xors;
    EXPECT_EQ(xors, 4u) << "parity should synthesize as an XOR tree";
    expectMatchesAnf(parity, vars);
}

TEST(SynthSmallAnf, NibblePriorityLeaderUsesSop) {
    // The LZD nibble leader P0 = ¬a3·(a2 ∨ ¬a1): 10 ANF terms but a
    // two-cube SOP. The minimizer must find a small form (≤ 6 gates).
    const auto vars = makeVars(4);
    const auto a1 = anf::Anf::var(vars[1]);
    const auto a2 = anf::Anf::var(vars[2]);
    const auto a3 = anf::Anf::var(vars[3]);
    const auto p0 = (~a3) * ((a2 ^ anf::Anf::one() ^ a2 * (~a1)) ^ (~a1));
    // p0 = ~a3 * (a2 | ~a1), built via x|y = x ^ y ^ xy.
    netlist::Netlist nl;
    netlist::Builder b(nl);
    std::vector<netlist::NetId> nets;
    for (const anf::Var v : vars)
        nets.push_back(b.input("x" + std::to_string(v)));
    nl.markOutput("f", synth::synthSmallAnf(b, p0, nets));
    EXPECT_LE(nl.numLogicGates(), 6u);
    expectMatchesAnf(p0, vars);
}

TEST(SynthSmallAnf, RandomFunctionsMatchExhaustively) {
    std::mt19937_64 rng(23);
    for (int round = 0; round < 40; ++round) {
        const int n = 2 + static_cast<int>(rng() % 5);  // 2..6 vars
        const auto vars = makeVars(n);
        std::vector<anf::Monomial> terms;
        const int t = 1 + static_cast<int>(rng() % 12);
        for (int q = 0; q < t; ++q) {
            anf::Monomial m;
            for (int i = 0; i < n; ++i)
                if (rng() % 3 == 0) m.insert(vars[static_cast<std::size_t>(i)]);
            terms.push_back(m);
        }
        const auto e = anf::Anf::fromTerms(std::move(terms));
        if (e.isConstant()) continue;
        expectMatchesAnf(e, vars);
    }
}

TEST(SynthSmallAnf, WideSupportFallsBackToAnf) {
    // 10-var parity with maxTtVars = 8 must not enumerate 2^10 rows.
    const auto vars = makeVars(10);
    anf::Anf parity;
    for (const auto v : vars) parity ^= anf::Anf::var(v);
    netlist::Netlist nl;
    netlist::Builder b(nl);
    std::vector<netlist::NetId> nets;
    for (const anf::Var v : vars)
        nets.push_back(b.input("x" + std::to_string(v)));
    const auto id = synth::synthSmallAnf(b, parity, nets, /*maxTtVars=*/8);
    nl.markOutput("f", id);
    EXPECT_EQ(nl.numLogicGates(), 9u);  // pure XOR tree
}

}  // namespace
}  // namespace pd
