// Cross-module integration tests: full flows (spec → PD → synthesis →
// mapping → verification) on mid-size circuits, and the evaluation
// harness itself.
#include <gtest/gtest.h>

#include "circuits/adder.hpp"
#include "circuits/comparator.hpp"
#include "circuits/counter.hpp"
#include "circuits/lzd.hpp"
#include "circuits/majority.hpp"
#include "eval/report.hpp"
#include "eval/table1.hpp"

namespace pd::eval {
namespace {

TEST(Flow, PdOnMajority7) {
    Flow flow;
    const auto bench = circuits::makeMajority(7);
    const auto row = flow.runPd("pd", bench, 0, 0);
    EXPECT_TRUE(row.verified);
    EXPECT_TRUE(row.exhaustive);
    EXPECT_GT(row.qor.area, 0.0);
    EXPECT_GT(row.qor.delay, 0.0);
    EXPECT_GT(row.pdBlocks, 0u);
}

TEST(Flow, SopBaselineOnMajority7) {
    Flow flow;
    const auto bench = circuits::makeMajority(7);
    const auto row = flow.runSopFactored("sop", bench, 0, 0);
    EXPECT_TRUE(row.verified);
    EXPECT_GT(row.qor.gates, 0u);
}

TEST(Flow, PdBeatsSopOnLzd8Delay) {
    // The core claim at small scale: PD's hierarchical result is faster
    // than the flat SOP synthesis of the same function.
    Flow flow;
    const auto bench = circuits::makeLzd(8);
    const auto sop = flow.runSopFactored("sop", bench, 0, 0);
    const auto pd = flow.runPd("pd", bench, 0, 0);
    EXPECT_TRUE(sop.verified);
    EXPECT_TRUE(pd.verified);
    EXPECT_LT(pd.qor.delay, sop.qor.delay);
}

TEST(Flow, PdOnAdder8MatchesReferenceExhaustively) {
    Flow flow;
    const auto bench = circuits::makeAdder(8);
    const auto row = flow.runPd("pd", bench, 0, 0);
    EXPECT_TRUE(row.verified);
    EXPECT_TRUE(row.exhaustive);  // 16 input bits
}

TEST(Flow, PdOnComparator8) {
    Flow flow;
    const auto bench = circuits::makeComparator(8);
    const auto row = flow.runPd("pd", bench, 0, 0);
    EXPECT_TRUE(row.verified);
    EXPECT_TRUE(row.exhaustive);
}

TEST(Flow, PdOnCounter12) {
    Flow flow;
    const auto bench = circuits::makeCounter(12);
    const auto row = flow.runPd("pd", bench, 0, 0);
    EXPECT_TRUE(row.verified);
}

TEST(Flow, MissingSpecsThrow) {
    Flow flow;
    const auto noSop = circuits::makeCounter(8);
    EXPECT_THROW((void)flow.runSopFactored("x", noSop, 0, 0), Error);
    const auto noAnf = circuits::makeComparator(15, 13);
    EXPECT_THROW((void)flow.runPd("x", noAnf, 0, 0), Error);
}

TEST(Report, FormatContainsRowsAndRatios) {
    Flow flow;
    BenchReport rep;
    rep.title = "test";
    const auto bench = circuits::makeMajority(7);
    rep.rows.push_back(flow.runSopFactored("baseline", bench, 100.0, 1.0));
    rep.rows.push_back(flow.runPd("pd", bench, 50.0, 0.5));
    const auto text = formatReport(rep);
    EXPECT_NE(text.find("test"), std::string::npos);
    EXPECT_NE(text.find("baseline"), std::string::npos);
    EXPECT_NE(text.find("PD shape"), std::string::npos);
    EXPECT_NE(text.find("paper"), std::string::npos);
}

// The row-group functions themselves are exercised by the bench binaries
// (they take seconds); here we spot-check the cheapest one end to end.
TEST(Table1, ComparatorRowGroupRuns) {
    const auto rep = rowComparator(8);
    ASSERT_GE(rep.rows.size(), 3u);
    for (const auto& row : rep.rows) EXPECT_TRUE(row.verified);
    // PD at least matches the progressive-comparator baseline on delay.
    const auto& base = rep.rows[0];
    const auto& pd = rep.rows[1];
    EXPECT_LE(pd.qor.delay, base.qor.delay * 1.05);
}

}  // namespace
}  // namespace pd::eval
