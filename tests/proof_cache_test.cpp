// Tests for the content-addressed SAT proof cache: the in-memory cache
// (sat/proof_cache.hpp), its pd-proof-v1 persistence (salvage, clamped
// drop accounting, fault injection), the shard-wire proof-delta codec,
// and the engine-level warm-start/replay/taint behavior — including the
// honest-provenance rule that replayed refutations are marked
// proof_source "cache" and never double-count solver work.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "engine/engine.hpp"
#include "engine/persist/proof_store.hpp"
#include "engine/report_json.hpp"
#include "engine/shard/protocol.hpp"
#include "netlist/netlist.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "sat/equiv.hpp"
#include "sat/miter.hpp"
#include "sat/proof_cache.hpp"
#include "util/fault/fault.hpp"

namespace pd {
namespace {

using engine::persist::LoadResult;
using engine::persist::ProofStore;
using sat::ProofCache;
using sat::ProofEntry;

/// Unique-per-test temp path, removed on scope exit.
class TempFile {
public:
    explicit TempFile(const std::string& tag)
        : path_(std::string(::testing::TempDir()) + "pd_proof_" + tag + "_" +
                std::to_string(::getpid()) + ".pdp") {
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }
    [[nodiscard]] const std::string& path() const { return path_; }

private:
    std::string path_;
};

[[nodiscard]] std::string readFile(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    return std::move(buf).str();
}

void writeFile(const std::string& path, const std::string& bytes) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Arms a plan for the test body; disarms all sites on scope exit.
class ScopedFaults {
public:
    explicit ScopedFaults(const std::string& plan) {
        std::string error;
        EXPECT_TRUE(fault::armPlan(plan, &error)) << error;
    }
    ~ScopedFaults() { fault::disarmAllForTest(); }
};

[[nodiscard]] ProofEntry sampleEntry(std::uint64_t seed) {
    ProofEntry e;
    e.conflicts = 100 + seed;
    e.propagations = 1000 + seed;
    e.restarts = seed % 5;
    e.learned = 50 + seed;
    e.winner = static_cast<int>(seed % 3);
    return e;
}

// ---- in-memory cache --------------------------------------------------------

TEST(ProofCache, LookupCountsHitsAndMisses) {
    ProofCache cache;
    EXPECT_FALSE(cache.lookup(1).has_value());
    EXPECT_TRUE(cache.insert(1, sampleEntry(1)));
    const auto hit = cache.lookup(1);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->conflicts, sampleEntry(1).conflicts);
    EXPECT_EQ(hit->winner, sampleEntry(1).winner);
    const auto s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.inserts, 1u);
    EXPECT_EQ(s.entries, 1u);
}

TEST(ProofCache, FirstInsertWins) {
    // A proof of a given obligation is unique; a duplicate insert (a
    // concurrent solve of the same miter) must not clobber the original.
    ProofCache cache;
    EXPECT_TRUE(cache.insert(7, sampleEntry(1)));
    EXPECT_FALSE(cache.insert(7, sampleEntry(2)));
    EXPECT_EQ(cache.lookup(7)->conflicts, sampleEntry(1).conflicts);
    EXPECT_EQ(cache.stats().inserts, 1u);
    EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ProofCache, RestoreAdoptsButLiveEntriesWin) {
    ProofCache cache;
    ASSERT_TRUE(cache.insert(1, sampleEntry(1)));
    const std::vector<ProofCache::SnapshotEntry> fromDisk = {
        {1, sampleEntry(99)},  // collides with the live proof — dropped
        {2, sampleEntry(2)},
    };
    EXPECT_EQ(cache.restore(fromDisk), 1u);
    EXPECT_EQ(cache.lookup(1)->conflicts, sampleEntry(1).conflicts);
    EXPECT_EQ(cache.lookup(2)->conflicts, sampleEntry(2).conflicts);
}

TEST(ProofCache, LocalOnlySnapshotExcludesRestoredEntries) {
    // The shard-worker drain: only proofs this process minted ship back;
    // the coordinator already has everything the worker warm-started on.
    ProofCache cache;
    ASSERT_EQ(cache.restore({{10, sampleEntry(10)}}), 1u);
    ASSERT_TRUE(cache.insert(20, sampleEntry(20)));
    const auto local = cache.snapshot(/*localOnly=*/true);
    ASSERT_EQ(local.size(), 1u);
    EXPECT_EQ(local[0].digest, 20u);
    EXPECT_EQ(cache.snapshot().size(), 2u);
}

TEST(ProofCache, MiterDigestIsContentAddressed) {
    const auto build = [](bool xorGate) {
        netlist::Netlist nl;
        const auto a = nl.addInput("a");
        const auto b = nl.addInput("b");
        nl.markOutput("y", nl.addGate(xorGate ? netlist::GateType::kXor
                                              : netlist::GateType::kOr,
                                      a, b));
        return nl;
    };
    const auto m1 = sat::buildMiterCnf(build(true), build(false));
    const auto m2 = sat::buildMiterCnf(build(true), build(false));
    const auto m3 = sat::buildMiterCnf(build(false), build(true));
    ASSERT_FALSE(m1.trivialUnsat);
    // Same obligation → same digest; different obligation → different.
    EXPECT_EQ(sat::miterDigest(m1.problem), sat::miterDigest(m2.problem));
    EXPECT_NE(sat::miterDigest(m1.problem), sat::miterDigest(m3.problem));
}

// ---- cache-aware equivalence check ------------------------------------------

/// A small raw/mapped-style pair that needs a real (non-trivial) solve:
/// x^y built from XOR vs from (x|y) & ~(x&y).
struct EquivPair {
    netlist::Netlist a;
    netlist::Netlist b;
};

[[nodiscard]] EquivPair xorPair() {
    EquivPair p;
    {
        const auto x = p.a.addInput("x");
        const auto y = p.a.addInput("y");
        p.a.markOutput("o", p.a.addGate(netlist::GateType::kXor, x, y));
    }
    {
        const auto x = p.b.addInput("x");
        const auto y = p.b.addInput("y");
        const auto any = p.b.addGate(netlist::GateType::kOr, x, y);
        const auto both = p.b.addGate(netlist::GateType::kNand, x, y);
        p.b.markOutput("o", p.b.addGate(netlist::GateType::kAnd, any, both));
    }
    return p;
}

TEST(ProofCacheEquiv, SecondCheckReplaysTheProof) {
    const auto p = xorPair();
    ASSERT_FALSE(sat::buildMiterCnf(p.a, p.b).trivialUnsat);
    ProofCache cache;
    sat::EquivSatOptions opt;
    opt.proofCache = &cache;

    const auto cold = sat::checkEquivalentSat(p.a, p.b, opt);
    ASSERT_EQ(cold.status, sat::EquivCheckResult::Status::kEquivalent);
    EXPECT_EQ(cold.proofSource, sat::EquivCheckResult::ProofSource::kComputed);

    const auto warm = sat::checkEquivalentSat(p.a, p.b, opt);
    EXPECT_EQ(warm.status, sat::EquivCheckResult::Status::kEquivalent);
    EXPECT_EQ(warm.proofSource, sat::EquivCheckResult::ProofSource::kCache);
    // Replayed statistics are the original solve's, bit for bit.
    EXPECT_EQ(warm.conflicts, cold.conflicts);
    EXPECT_EQ(warm.propagations, cold.propagations);
    EXPECT_EQ(warm.restarts, cold.restarts);
    EXPECT_EQ(warm.learned, cold.learned);
    EXPECT_EQ(warm.winner, cold.winner);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ProofCacheEquiv, NullCacheMeansNoProvenanceClaim) {
    const auto p = xorPair();
    const auto r = sat::checkEquivalentSat(p.a, p.b, {});
    EXPECT_EQ(r.status, sat::EquivCheckResult::Status::kEquivalent);
    EXPECT_EQ(r.proofSource, sat::EquivCheckResult::ProofSource::kNone);
}

TEST(ProofCacheEquiv, SatVerdictsAreNeverPublished) {
    // x^y vs x|y differ: the model is a counterexample, not a proof.
    netlist::Netlist a, b;
    {
        const auto x = a.addInput("x");
        const auto y = a.addInput("y");
        a.markOutput("o", a.addGate(netlist::GateType::kXor, x, y));
    }
    {
        const auto x = b.addInput("x");
        const auto y = b.addInput("y");
        b.markOutput("o", b.addGate(netlist::GateType::kOr, x, y));
    }
    ProofCache cache;
    sat::EquivSatOptions opt;
    opt.proofCache = &cache;
    const auto r = sat::checkEquivalentSat(a, b, opt);
    EXPECT_EQ(r.status, sat::EquivCheckResult::Status::kDifferent);
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().inserts, 0u);
}

// ---- pd-proof-v1 store ------------------------------------------------------

[[nodiscard]] std::vector<ProofCache::SnapshotEntry> threeProofs() {
    std::vector<ProofCache::SnapshotEntry> entries;
    for (std::uint64_t d : {11u, 22u, 33u})
        entries.push_back({d, sampleEntry(d)});
    return entries;
}

TEST(ProofStoreTest, SaveLoadRoundTrip) {
    TempFile file("roundtrip");
    ASSERT_TRUE(ProofStore::save(file.path(), "fp", threeProofs()));
    const auto loaded = ProofStore::load(file.path(), "fp");
    EXPECT_EQ(loaded.status, LoadResult::Status::kLoaded);
    ASSERT_EQ(loaded.entries.size(), 3u);
    const auto expected = threeProofs();
    for (std::size_t i = 0; i < 3; ++i) {
        const auto& want = expected[i];
        EXPECT_EQ(loaded.entries[i].digest, want.digest);
        EXPECT_EQ(loaded.entries[i].entry.conflicts, want.entry.conflicts);
        EXPECT_EQ(loaded.entries[i].entry.propagations,
                  want.entry.propagations);
        EXPECT_EQ(loaded.entries[i].entry.restarts, want.entry.restarts);
        EXPECT_EQ(loaded.entries[i].entry.learned, want.entry.learned);
        EXPECT_EQ(loaded.entries[i].entry.winner, want.entry.winner);
    }
}

TEST(ProofStoreTest, BudgetExhaustedWinnerSurvivesTheBias) {
    // winner -1 (budget exhausted) is stored biased by one; the bias must
    // round-trip, not underflow.
    TempFile file("winner");
    std::vector<ProofCache::SnapshotEntry> entries = {{5, {}}};
    entries[0].entry.winner = -1;
    ASSERT_TRUE(ProofStore::save(file.path(), "fp", entries));
    const auto loaded = ProofStore::load(file.path(), "fp");
    ASSERT_EQ(loaded.entries.size(), 1u);
    EXPECT_EQ(loaded.entries[0].entry.winner, -1);
}

TEST(ProofStoreTest, MissingFileIsACleanColdStart) {
    const auto loaded = ProofStore::load("/nonexistent/proofs.pdp", "fp");
    EXPECT_EQ(loaded.status, LoadResult::Status::kNoFile);
    EXPECT_FALSE(loaded.usable());
}

TEST(ProofStoreTest, RejectsBadMagicAndVersionAndFingerprint) {
    TempFile file("reject");
    writeFile(file.path(), "this is not a proof store");
    EXPECT_EQ(ProofStore::load(file.path(), "fp").status,
              LoadResult::Status::kBadMagic);

    ASSERT_TRUE(ProofStore::save(file.path(), "fp-writer", threeProofs()));
    const auto wrongFp = ProofStore::load(file.path(), "fp-reader");
    EXPECT_EQ(wrongFp.status, LoadResult::Status::kBadFingerprint);
    EXPECT_NE(wrongFp.detail.find("fp-writer"), std::string::npos);
    EXPECT_NE(wrongFp.detail.find("fp-reader"), std::string::npos);

    std::string bytes = readFile(file.path());
    bytes[engine::persist::kProofMagic.size()] ^= 0x01;  // version u32
    writeFile(file.path(), bytes);
    EXPECT_EQ(ProofStore::load(file.path(), "fp-writer").status,
              LoadResult::Status::kBadVersion);
}

TEST(ProofStoreTest, FlippedByteInTheLastEntrySalvagesTheRest) {
    TempFile file("salvage");
    ASSERT_TRUE(ProofStore::save(file.path(), "fp", threeProofs()));
    std::string bytes = readFile(file.path());
    bytes[bytes.size() - 10] ^= 0x01;
    writeFile(file.path(), bytes);
    const auto loaded = ProofStore::load(file.path(), "fp");
    EXPECT_EQ(loaded.status, LoadResult::Status::kSalvaged);
    EXPECT_TRUE(loaded.usable());
    ASSERT_EQ(loaded.entries.size(), 2u);
    EXPECT_EQ(loaded.entries[0].digest, 11u);
    EXPECT_EQ(loaded.entries[1].digest, 22u);
    EXPECT_EQ(loaded.droppedEntries, 1u);
}

TEST(ProofStoreTest, CorruptCountFieldClampsDroppedEntries) {
    // The salvage-accounting fix under its worst input: the bit flip
    // lands in the count field itself, declaring ~2^59 entries. The drop
    // count must be clamped to what the bytes could hold, and the detail
    // must say the declared count is untrusted.
    TempFile file("count_flip");
    ASSERT_TRUE(ProofStore::save(file.path(), "fp", threeProofs()));
    std::string bytes = readFile(file.path());
    const std::size_t countOff = engine::persist::kProofMagic.size() +
                                 4 /*version*/ + (4 + 2) /*"fp" str*/;
    bytes[countOff + 7] ^= 0x08;  // little-endian high byte
    writeFile(file.path(), bytes);
    const auto loaded = ProofStore::load(file.path(), "fp");
    EXPECT_EQ(loaded.status, LoadResult::Status::kSalvaged);
    ASSERT_EQ(loaded.entries.size(), 3u)
        << "every checksummed entry must still be adopted";
    EXPECT_EQ(loaded.droppedEntries, 0u)
        << "a corrupted count must not publish a garbage drop count";
    EXPECT_NE(loaded.detail.find("declared entry count untrusted"),
              std::string::npos)
        << loaded.detail;
}

TEST(ProofStoreTest, DamagedFirstEntryMeansNoSalvage) {
    TempFile file("no_salvage");
    ASSERT_TRUE(ProofStore::save(file.path(), "fp", threeProofs()));
    std::string bytes = readFile(file.path());
    const std::size_t headerEnd = engine::persist::kProofMagic.size() +
                                  4 /*version*/ + (4 + 2) /*"fp" str*/ +
                                  8 /*count*/;
    bytes[headerEnd] ^= 0x01;  // first byte of entry 0's digest
    writeFile(file.path(), bytes);
    const auto loaded = ProofStore::load(file.path(), "fp");
    EXPECT_EQ(loaded.status, LoadResult::Status::kCorrupt);
    EXPECT_FALSE(loaded.usable());
    EXPECT_TRUE(loaded.entries.empty());
}

TEST(ProofStoreTest, EnospcFaultFailsTheSaveAndLeavesNoFile) {
    TempFile file("enospc");
    std::string error;
    {
        ScopedFaults faults("persist.proof.save.enospc:n1");
        EXPECT_FALSE(
            ProofStore::save(file.path(), "fp", threeProofs(), &error));
        EXPECT_NE(error.find("no space left on device"), std::string::npos)
            << error;
    }
    EXPECT_EQ(ProofStore::load(file.path(), "fp").status,
              LoadResult::Status::kNoFile)
        << "a failed save must not leave a target file behind";
    EXPECT_TRUE(ProofStore::save(file.path(), "fp", threeProofs()));
}

TEST(ProofStoreTest, LoadFlipFaultIsCaughtAndClearsWhenDisarmed) {
    TempFile file("load_flip");
    ASSERT_TRUE(ProofStore::save(file.path(), "fp", threeProofs()));
    {
        ScopedFaults faults("persist.proof.load.flip:n1");
        const auto loaded = ProofStore::load(file.path(), "fp");
        EXPECT_FALSE(loaded.ok());
        EXPECT_TRUE(loaded.status == LoadResult::Status::kSalvaged ||
                    loaded.status == LoadResult::Status::kCorrupt);
    }
    EXPECT_TRUE(ProofStore::load(file.path(), "fp").ok())
        << "the file itself was never damaged; disarmed loads are clean";
}

// ---- shard wire -------------------------------------------------------------

TEST(ProofWire, ProofDeltaRoundTrips) {
    engine::shard::ProofDelta d;
    d.digest = 0xdeadbeefcafef00dull;
    d.conflicts = 17;
    d.propagations = 512;
    d.restarts = 2;
    d.learned = 9;
    d.winner = -1;  // biased encoding must survive budget-exhausted too
    const auto back =
        engine::shard::decodeProofDelta(engine::shard::encodeProofDelta(d));
    EXPECT_EQ(back.digest, d.digest);
    EXPECT_EQ(back.conflicts, d.conflicts);
    EXPECT_EQ(back.propagations, d.propagations);
    EXPECT_EQ(back.restarts, d.restarts);
    EXPECT_EQ(back.learned, d.learned);
    EXPECT_EQ(back.winner, d.winner);
}

TEST(ProofWire, ResultCarriesProofSourceOutsideTheSemanticPayload) {
    engine::JobResult r;
    r.name = "j";
    r.ok = true;
    r.satVerify.ran = true;
    r.satVerify.proofSource = engine::JobResult::SatVerify::ProofSource::kCache;
    auto [index, back] =
        engine::shard::decodeResult(engine::shard::encodeResult(3, r));
    EXPECT_EQ(index, 3u);
    EXPECT_EQ(back.satVerify.proofSource,
              engine::JobResult::SatVerify::ProofSource::kCache);
}

// ---- engine integration -----------------------------------------------------

[[nodiscard]] std::vector<engine::JobSpec> twoJobs() {
    std::vector<engine::JobSpec> specs;
    for (const char* name : {"majority7", "counter8"}) {
        engine::JobSpec s;
        s.benchmark = name;
        specs.push_back(std::move(s));
    }
    return specs;
}

TEST(ProofEngine, WarmRunReplaysEveryProofAndFlushesByteIdentically) {
    TempFile file("engine_warm");
    engine::EngineOptions opt;
    opt.verifyThreads = 1;
    opt.proofCacheFile = file.path();
    {
        engine::Engine cold(opt);
        EXPECT_EQ(cold.proofPersistInfo().loadStatus,
                  LoadResult::Status::kNoFile);
        for (const auto& r : cold.runBatch(twoJobs())) {
            ASSERT_TRUE(r.ok) << r.error;
            ASSERT_TRUE(r.satVerify.ran);
            EXPECT_EQ(r.satVerify.proofSource,
                      engine::JobResult::SatVerify::ProofSource::kComputed);
        }
        ASSERT_TRUE(cold.flushProofCache());
    }
    const std::string coldBytes = readFile(file.path());
    ASSERT_FALSE(coldBytes.empty());

    engine::Engine warm(opt);
    EXPECT_EQ(warm.proofPersistInfo().loadStatus, LoadResult::Status::kLoaded);
    EXPECT_GT(warm.proofPersistInfo().loadedEntries, 0u);
    const auto coldResults = [&] {
        engine::EngineOptions fresh = opt;
        fresh.proofCacheFile.clear();
        return engine::Engine(fresh).runBatch(twoJobs());
    }();
    const auto results = warm.runBatch(twoJobs());
    ASSERT_EQ(results.size(), coldResults.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        ASSERT_TRUE(r.ok) << r.error;
        ASSERT_TRUE(r.satVerify.ran);
        EXPECT_EQ(r.satVerify.proofSource,
                  engine::JobResult::SatVerify::ProofSource::kCache)
            << r.name;
        // Replay is honest: the verdict and statistics match a computed
        // run bit for bit — only the provenance differs.
        EXPECT_EQ(r.verification, coldResults[i].verification);
        EXPECT_EQ(r.satVerify.conflicts, coldResults[i].satVerify.conflicts);
        EXPECT_EQ(r.satVerify.winner, coldResults[i].satVerify.winner);
    }
    const auto stats = warm.proofCacheStats();
    EXPECT_EQ(stats.misses, 0u) << "a warm run must not race the portfolio";
    EXPECT_GT(stats.hits, 0u);
    ASSERT_TRUE(warm.flushProofCache());
    EXPECT_EQ(readFile(file.path()), coldBytes)
        << "replaying proofs must rewrite the store byte-identically";
}

TEST(ProofEngine, BudgetStarvedRunsNeverPublishProofs) {
    TempFile file("engine_taint");
    engine::EngineOptions opt;
    opt.verifyThreads = 1;
    opt.proofCacheFile = file.path();
    {
        ScopedFaults faults("verify.sat.budget:e1");
        engine::Engine engine(opt);
        for (const auto& r : engine.runBatch(twoJobs())) {
            ASSERT_TRUE(r.ok) << r.error;
            EXPECT_NE(r.verification, engine::VerifyStatus::kSat)
                << "a starved search cannot certify";
        }
        EXPECT_EQ(engine.proofCacheStats().entries, 0u)
            << "fault-starved runs must never publish proofs";
        ASSERT_TRUE(engine.flushProofCache());
    }
    // The flushed store is honest too: empty, so the next run cold-solves.
    const auto loaded =
        ProofStore::load(file.path(), engine::proofFingerprint(opt));
    EXPECT_EQ(loaded.status, LoadResult::Status::kLoaded);
    EXPECT_TRUE(loaded.entries.empty());
}

TEST(ProofEngine, ReadonlyRefusesToFlushAndBudgetSaltGuardsReplay) {
    TempFile file("engine_ro");
    engine::EngineOptions opt;
    opt.verifyThreads = 1;
    opt.proofCacheFile = file.path();
    {
        engine::Engine engine(opt);
        for (const auto& r : engine.runBatch(twoJobs()))
            ASSERT_TRUE(r.ok) << r.error;
        ASSERT_TRUE(engine.flushProofCache());
    }
    engine::EngineOptions ro = opt;
    ro.proofCacheReadonly = true;
    engine::Engine reader(ro);
    EXPECT_EQ(reader.proofPersistInfo().loadStatus,
              LoadResult::Status::kLoaded);
    std::string error;
    EXPECT_FALSE(reader.flushProofCache(nullptr, &error));
    EXPECT_NE(error.find("read-only"), std::string::npos) << error;

    // A different SAT budget is a different salt: the store must not
    // replay under it (stats minted under another budget would lie).
    engine::EngineOptions budget = opt;
    budget.verifyConflictBudget = 123456;
    engine::Engine other(budget);
    EXPECT_EQ(other.proofPersistInfo().loadStatus,
              LoadResult::Status::kBadFingerprint);
}

TEST(ProofEngine, CacheHitReplayKeepsSatProvenanceHonest) {
    // In-memory result-cache hit: the replayed JobResult's satVerify
    // block is served from the cache, so its proof_source must say
    // "cache" — the portfolio never ran for the second call.
    engine::EngineOptions opt;
    opt.verifyThreads = 1;
    engine::Engine engine(opt);
    const auto specs = twoJobs();
    const auto first = engine.runBatch(specs);
    const auto second = engine.runBatch(specs);
    ASSERT_EQ(second.size(), first.size());
    for (std::size_t i = 0; i < second.size(); ++i) {
        ASSERT_TRUE(second[i].ok) << second[i].error;
        ASSERT_TRUE(second[i].cacheHit);
        ASSERT_TRUE(second[i].satVerify.ran);
        EXPECT_EQ(second[i].satVerify.proofSource,
                  engine::JobResult::SatVerify::ProofSource::kCache);
        EXPECT_EQ(second[i].satVerify.conflicts,
                  first[i].satVerify.conflicts);
    }
}

TEST(ProofEngine, ReportSpellsProofProvenance) {
    using engine::JobResult;
    EXPECT_EQ(engine::proofSourceName(
                  JobResult::SatVerify::ProofSource::kComputed),
              "computed");
    EXPECT_EQ(
        engine::proofSourceName(JobResult::SatVerify::ProofSource::kCache),
        "cache");
}

}  // namespace
}  // namespace pd
