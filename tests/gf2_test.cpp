// Unit tests for the GF(2) linear-algebra layer.
#include <gtest/gtest.h>

#include <random>

#include "gf2/bitvec.hpp"
#include "gf2/solver.hpp"

namespace pd::gf2 {
namespace {

TEST(BitVec, SetGetFlip) {
    BitVec v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_TRUE(v.isZero());
    v.set(0);
    v.set(64);
    v.set(129);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(64));
    EXPECT_TRUE(v.get(129));
    EXPECT_FALSE(v.get(1));
    EXPECT_EQ(v.popcount(), 3u);
    v.flip(64);
    EXPECT_FALSE(v.get(64));
    EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVec, XorAndOps) {
    BitVec a(70);
    BitVec b(70);
    a.set(3);
    a.set(65);
    b.set(3);
    b.set(10);
    const BitVec x = a ^ b;
    EXPECT_FALSE(x.get(3));
    EXPECT_TRUE(x.get(10));
    EXPECT_TRUE(x.get(65));
    const BitVec n = a & b;
    EXPECT_TRUE(n.get(3));
    EXPECT_FALSE(n.get(10));
    EXPECT_FALSE(n.get(65));
}

TEST(BitVec, LowHighSetBits) {
    BitVec v(200);
    EXPECT_EQ(v.lowestSetBit(), 200u);
    EXPECT_EQ(v.highestSetBit(), 200u);
    v.set(17);
    v.set(130);
    EXPECT_EQ(v.lowestSetBit(), 17u);
    EXPECT_EQ(v.highestSetBit(), 130u);
}

TEST(BitVec, ResizeZeroFills) {
    BitVec v(10);
    v.set(9);
    v.resize(100);
    EXPECT_TRUE(v.get(9));
    for (std::size_t i = 10; i < 100; ++i) EXPECT_FALSE(v.get(i));
    EXPECT_THROW(
        [&] {
            BitVec w(10);
            w.resize(5);
        }(),
        Error);
}

BitVec fromMask(std::uint32_t mask, std::size_t bits = 8) {
    BitVec v(bits);
    // The mask has 32 bits; wider vectors are zero beyond it (shifting a
    // u32 by >=32 is UB, which UBSan rightly flags).
    for (std::size_t i = 0; i < bits && i < 32; ++i)
        if ((mask >> i) & 1u) v.set(i);
    return v;
}

TEST(SpanSolver, IndependentThenDependent) {
    SpanSolver s;
    EXPECT_TRUE(s.add(fromMask(0b001)).independent);
    EXPECT_TRUE(s.add(fromMask(0b010)).independent);
    const auto r = s.add(fromMask(0b011));
    EXPECT_FALSE(r.independent);
    // certificate: vectors 0 and 1.
    EXPECT_TRUE(r.combination.get(0));
    EXPECT_TRUE(r.combination.get(1));
    EXPECT_EQ(s.rank(), 2u);
    EXPECT_EQ(s.inserted(), 3u);
}

TEST(SpanSolver, RepresentGivesCombination) {
    SpanSolver s;
    s.add(fromMask(0b0101));
    s.add(fromMask(0b0110));
    s.add(fromMask(0b1000));
    const auto comb = s.represent(fromMask(0b1011));
    ASSERT_TRUE(comb.has_value());
    // 0101 ^ 0110 ^ 1000 = 1011.
    EXPECT_TRUE(comb->get(0));
    EXPECT_TRUE(comb->get(1));
    EXPECT_TRUE(comb->get(2));
    EXPECT_FALSE(s.represent(fromMask(0b0001)).has_value());
}

TEST(SpanSolver, ZeroVectorIsDependentWithEmptyCertificate) {
    SpanSolver s;
    s.add(fromMask(0b1));
    const auto r = s.add(fromMask(0));
    EXPECT_FALSE(r.independent);
    EXPECT_TRUE(r.combination.isZero());
}

TEST(SpanSolver, GrowingDimension) {
    SpanSolver s;
    s.add(fromMask(0b1, 4));
    s.add(fromMask(0b10, 64));
    BitVec wide(100);
    wide.set(99);
    EXPECT_TRUE(s.add(wide).independent);
    BitVec q(100);
    q.set(0);
    q.set(99);
    EXPECT_TRUE(s.contains(q));
}

// Property: random vectors — every dependence certificate must XOR back to
// the rejected vector.
class SpanSolverProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SpanSolverProperty, CertificatesAreExact) {
    std::mt19937_64 rng(GetParam());
    constexpr std::size_t kDim = 24;
    SpanSolver solver;
    std::vector<BitVec> inserted;
    for (int iter = 0; iter < 200; ++iter) {
        BitVec v(kDim);
        for (std::size_t i = 0; i < kDim; ++i)
            if (rng() & 1u) v.set(i);
        const auto r = solver.add(v);
        if (!r.independent) {
            BitVec acc(kDim);
            for (std::size_t i = 0; i < inserted.size(); ++i)
                if (i < r.combination.size() && r.combination.get(i))
                    acc ^= inserted[i];
            EXPECT_EQ(acc, v) << "certificate mismatch at iteration " << iter;
        }
        inserted.push_back(v);
        EXPECT_LE(solver.rank(), kDim);
    }
    // After 200 random 24-dim vectors the span is full with near certainty.
    EXPECT_EQ(solver.rank(), kDim);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpanSolverProperty,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234u));

}  // namespace
}  // namespace pd::gf2
