// Sharded-engine tests: the frame codec (round-trips, hostile bytes —
// run under ASan/UBSan in CI), end-to-end equivalence of sharded and
// in-process batches across --shards {1,2,4} and both transports
// (pipe and localhost socket, byte-identical stores), heartbeat
// liveness (beating workers survive, silent ones die at the deadline
// and their jobs retry elsewhere), crash isolation (respawn, retry
// budgets, clean per-job failure, cache completeness), wall-budget
// kills, worker-pool collapse → in-process fallback, spawn failure
// accounting, drain timeouts, graceful shutdown, and the pd_cli batch
// exit-code contract. Everything that can go wrong in a worker
// must cost at most its own job — never the batch, the report, or the
// store.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "circuits/registry.hpp"

#include "engine/engine.hpp"
#include "engine/persist/store.hpp"
#include "engine/shard/coordinator.hpp"
#include "engine/shard/protocol.hpp"
#include "engine/shard/worker.hpp"
#include "util/error.hpp"
#include "util/fault/fault.hpp"
#include "util/shutdown.hpp"

namespace pd::engine::shard {
namespace {

/// The pd_cli binary carrying the worker mode, baked in by CMake.
#ifdef PD_SHARD_TEST_WORKER_EXE
const char* workerExe() { return PD_SHARD_TEST_WORKER_EXE; }
#else
const char* workerExe() { return std::getenv("PD_SHARD_WORKER_EXE"); }
#endif

class TempFile {
public:
    explicit TempFile(const std::string& tag)
        : path_(std::string(::testing::TempDir()) + "pd_shard_" + tag + "_" +
                std::to_string(::getpid()) + ".pdc") {
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }
    [[nodiscard]] const std::string& path() const { return path_; }

private:
    std::string path_;
};

/// setenv/unsetenv with scope (the crash/hang hooks are env-driven).
class ScopedEnv {
public:
    ScopedEnv(const char* name, const char* value) : name_(name) {
        ::setenv(name, value, 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }

private:
    const char* name_;
};

/// Arms a fault plan for the test body and disarms every site on exit —
/// the coordinator forwards armed plans to its workers, so a leaked
/// plan would poison later tests in this binary.
class ScopedFaults {
public:
    explicit ScopedFaults(const std::string& plan) {
        std::string error;
        EXPECT_TRUE(fault::armPlan(plan, &error)) << error;
    }
    ~ScopedFaults() { fault::disarmAllForTest(); }
};

[[nodiscard]] EngineOptions shardOptions(std::size_t shards,
                                         std::string cacheFile = {}) {
    EngineOptions opt;
    opt.shards = shards;
    opt.jobs = 2;
    opt.cacheFile = std::move(cacheFile);
    if (const char* exe = workerExe()) opt.shardWorkerExe = exe;
    return opt;
}

[[nodiscard]] std::vector<JobSpec> lightSpecs() {
    std::vector<JobSpec> specs;
    for (const char* name : {"majority7", "counter8", "adder8"}) {
        JobSpec s;
        s.benchmark = name;
        specs.push_back(std::move(s));
    }
    JobSpec expr;
    expr.name = "maj-expr";
    expr.expressions = {"maj=a*b ^ a*c ^ b*c"};
    specs.push_back(std::move(expr));
    return specs;
}

/// Everything except timings, shard provenance and cache tier — the
/// fields the sharded/in-process equivalence contract excludes.
void expectSameSemantics(const JobResult& a, const JobResult& b) {
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.error, b.error);
    EXPECT_EQ(a.blocks, b.blocks);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.leaders, b.leaders);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.budgetExhausted, b.budgetExhausted);
    EXPECT_EQ(a.qor.area, b.qor.area);
    EXPECT_EQ(a.qor.delay, b.qor.delay);
    EXPECT_EQ(a.qor.gates, b.qor.gates);
    EXPECT_EQ(a.levels, b.levels);
    EXPECT_EQ(a.interconnect, b.interconnect);
    EXPECT_EQ(a.verification, b.verification);
    EXPECT_EQ(a.vectorsTested, b.vectorsTested);
    EXPECT_EQ(a.exhaustive, b.exhaustive);
    EXPECT_EQ(a.cacheKey, b.cacheKey);
}

void expectSameNetlist(const netlist::Netlist& a, const netlist::Netlist& b) {
    ASSERT_EQ(a.numNets(), b.numNets());
    for (netlist::NetId id = 0; id < a.numNets(); ++id) {
        EXPECT_EQ(a.gate(id).type, b.gate(id).type);
        EXPECT_EQ(a.gate(id).in, b.gate(id).in);
    }
    ASSERT_EQ(a.outputs().size(), b.outputs().size());
    for (std::size_t i = 0; i < a.outputs().size(); ++i) {
        EXPECT_EQ(a.outputs()[i].name, b.outputs()[i].name);
        EXPECT_EQ(a.outputs()[i].net, b.outputs()[i].net);
    }
}

// ---- framing codec ---------------------------------------------------------

TEST(ShardProtocol, FrameRoundTripInArbitraryChunks) {
    std::string stream;
    appendFrame(stream, FrameType::kHello, encodeHello({kProtocolVersion, 7}));
    appendFrame(stream, FrameType::kShutdown, "");
    appendFrame(stream, FrameType::kCacheEntry,
                encodeCacheDelta({"key", "payload-bytes", 42}));

    // Byte-at-a-time feeding must yield exactly the three frames.
    FrameDecoder d;
    std::vector<Frame> frames;
    for (const char c : stream) {
        d.feed(std::string_view(&c, 1));
        while (auto f = d.next()) frames.push_back(std::move(*f));
    }
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_TRUE(d.drained());
    EXPECT_EQ(frames[0].type, FrameType::kHello);
    const Hello h = decodeHello(frames[0].payload);
    EXPECT_EQ(h.version, kProtocolVersion);
    EXPECT_EQ(h.shardId, 7u);
    EXPECT_EQ(frames[1].type, FrameType::kShutdown);
    EXPECT_TRUE(frames[1].payload.empty());
    const CacheDelta delta = decodeCacheDelta(frames[2].payload);
    EXPECT_EQ(delta.key, "key");
    EXPECT_EQ(delta.payload, "payload-bytes");
    EXPECT_EQ(delta.stamp, 42u);
}

TEST(ShardProtocol, JobSpecRoundTrip) {
    JobSpec spec;
    spec.name = "roundtrip";
    spec.benchmark = "majority7";
    spec.expressions = {"f=a*b ^ c", "g=a ^ b"};
    spec.options.k = 3;
    spec.options.identityMaxDegree = 5;
    spec.options.useLinearMinimize = false;
    spec.options.complementNullspace = true;
    spec.options.maxIterations = 17;
    spec.options.maxExhaustiveCombinations = 1234;
    spec.options.mergeAttemptBudget = 99;
    spec.options.probeThreads = 3;
    spec.options.recordTrace = false;
    spec.verify = false;
    spec.keepMapped = true;

    auto [index, back] = decodeJob(encodeJob(31, spec));
    EXPECT_EQ(index, 31u);
    EXPECT_EQ(back.name, spec.name);
    EXPECT_EQ(back.benchmark, spec.benchmark);
    EXPECT_EQ(back.expressions, spec.expressions);
    EXPECT_EQ(back.options.k, spec.options.k);
    EXPECT_EQ(back.options.identityMaxDegree, spec.options.identityMaxDegree);
    EXPECT_EQ(back.options.useLinearMinimize, spec.options.useLinearMinimize);
    EXPECT_EQ(back.options.useSizeReduction, spec.options.useSizeReduction);
    EXPECT_EQ(back.options.useIdentities, spec.options.useIdentities);
    EXPECT_EQ(back.options.useNullspaceMerging,
              spec.options.useNullspaceMerging);
    EXPECT_EQ(back.options.complementNullspace,
              spec.options.complementNullspace);
    EXPECT_EQ(back.options.maxIterations, spec.options.maxIterations);
    EXPECT_EQ(back.options.maxExhaustiveCombinations,
              spec.options.maxExhaustiveCombinations);
    EXPECT_EQ(back.options.mergeAttemptBudget,
              spec.options.mergeAttemptBudget);
    EXPECT_EQ(back.options.probeThreads, spec.options.probeThreads);
    EXPECT_EQ(back.options.recordTrace, spec.options.recordTrace);
    EXPECT_EQ(back.verify, spec.verify);
    EXPECT_EQ(back.keepMapped, spec.keepMapped);
}

TEST(ShardProtocol, BenchPointerSpecRefusesTheWire) {
    JobSpec spec;
    spec.bench = std::make_shared<const circuits::Benchmark>();
    EXPECT_FALSE(wireSerializable(spec));
    EXPECT_THROW((void)encodeJob(0, spec), pd::Error);
}

TEST(ShardProtocol, ResultRoundTrip) {
    JobResult r;
    r.name = "res";
    r.ok = true;
    r.blocks = 4;
    r.iterations = 6;
    r.leaders = 5;
    r.converged = true;
    r.budgetExhausted = true;
    r.qor.area = 99.5;
    r.qor.delay = 0.25;
    r.qor.gates = 12;
    r.levels = 3;
    r.interconnect = 21;
    r.verification = VerifyStatus::kSimulated;
    r.vectorsTested = 128;
    r.exhaustive = true;
    r.wallMs = 12.5;
    r.cpuMs = 11.25;
    r.phases.decomposeMs = 7.5;
    r.phases.verifyMs = 1.5;
    r.cacheHit = true;
    r.cacheSource = CacheSource::kDisk;
    r.cacheKey = "0123456789abcdef";

    auto [index, back] = decodeResult(encodeResult(9, r));
    EXPECT_EQ(index, 9u);
    expectSameSemantics(r, back);
    EXPECT_EQ(back.wallMs, r.wallMs);
    EXPECT_EQ(back.cpuMs, r.cpuMs);
    EXPECT_EQ(back.phases.decomposeMs, r.phases.decomposeMs);
    EXPECT_EQ(back.phases.verifyMs, r.phases.verifyMs);
    EXPECT_EQ(back.cacheHit, r.cacheHit);
    EXPECT_EQ(back.cacheSource, r.cacheSource);
}

TEST(ShardProtocol, TruncationIsIncompleteNotAnError) {
    std::string stream;
    appendFrame(stream, FrameType::kCacheEntry,
                encodeCacheDelta({"k", "v", 1}));
    // Every proper prefix must park the decoder (nullopt), never throw:
    // a pipe delivers frames in arbitrary cuts.
    for (std::size_t keep = 0; keep < stream.size(); ++keep) {
        FrameDecoder d;
        d.feed(stream.substr(0, keep));
        EXPECT_FALSE(d.next().has_value()) << "prefix " << keep;
    }
}

TEST(ShardProtocol, MalformedHeadersThrow) {
    // Unknown frame type.
    {
        FrameDecoder d;
        d.feed(std::string("\x2a\x00\x00\x00\x00", 5));
        EXPECT_THROW((void)d.next(), pd::Error);
        // Poisoned decoders refuse further use instead of resyncing on
        // garbage.
        EXPECT_THROW((void)d.next(), pd::Error);
    }
    // Length above the protocol limit must throw immediately — not wait
    // for (or allocate) a gigabyte body.
    {
        FrameDecoder d;
        std::string hdr;
        hdr.push_back(static_cast<char>(FrameType::kJob));
        for (const unsigned char c : {0xff, 0xff, 0xff, 0x7f})
            hdr.push_back(static_cast<char>(c));
        d.feed(hdr);
        EXPECT_THROW((void)d.next(), pd::Error);
    }
    // Flipped payload byte: checksum must catch it.
    {
        std::string stream;
        appendFrame(stream, FrameType::kCacheEntry,
                    encodeCacheDelta({"key", "value", 3}));
        stream[7] = static_cast<char>(stream[7] ^ 0x10);
        FrameDecoder d;
        d.feed(stream);
        EXPECT_THROW((void)d.next(), pd::Error);
    }
}

TEST(ShardProtocol, HeartbeatRoundTrip) {
    Heartbeat hb;
    hb.shardId = 3;
    hb.seq = 0x1122334455667788ull;
    const Heartbeat back = decodeHeartbeat(encodeHeartbeat(hb));
    EXPECT_EQ(back.shardId, hb.shardId);
    EXPECT_EQ(back.seq, hb.seq);
    // Trailing junk is a protocol violation, exactly like every other
    // payload decoder.
    EXPECT_THROW((void)decodeHeartbeat(encodeHeartbeat(hb) + "x"),
                 pd::Error);
    EXPECT_THROW((void)decodeHeartbeat("123"), pd::Error);
}

TEST(ShardProtocol, PoisonDetailNamesFrameAndOffset) {
    // A poisoned decoder must say *where* the stream went bad: one clean
    // frame, then a corrupted one, so the detail pins frame 1 at the
    // offset right after the first frame's bytes.
    std::string stream;
    appendFrame(stream, FrameType::kHello, encodeHello({kProtocolVersion, 0}));
    const std::size_t firstFrameBytes = stream.size();
    appendFrame(stream, FrameType::kCacheEntry,
                encodeCacheDelta({"key", "value", 3}));
    stream[firstFrameBytes + 7] =
        static_cast<char>(stream[firstFrameBytes + 7] ^ 0x10);
    FrameDecoder d;
    d.feed(stream);
    ASSERT_TRUE(d.next().has_value());  // the clean hello
    try {
        (void)d.next();
        FAIL() << "corrupted frame must throw";
    } catch (const pd::Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("at frame 1"), std::string::npos) << what;
        EXPECT_NE(what.find("stream offset " +
                            std::to_string(firstFrameBytes)),
                  std::string::npos)
            << what;
    }
    EXPECT_TRUE(d.poisoned());
}

/// Property test: random frame streams round-trip; any single-byte
/// mutation either still decodes (frames before the damage), parks, or
/// throws pd::Error — never UB (ASan/UBSan legs enforce the "never").
TEST(ShardProtocol, FuzzMutatedStreamsNeverMisbehave) {
    std::uint64_t rng = 0x243f6a8885a308d3ull;
    const auto rnd = [&rng](std::uint64_t bound) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        return (rng >> 33) % bound;
    };
    const FrameType types[] = {FrameType::kHello,      FrameType::kJob,
                               FrameType::kResult,     FrameType::kShutdown,
                               FrameType::kCacheEntry, FrameType::kBye,
                               FrameType::kObs,        FrameType::kProofEntry,
                               FrameType::kHeartbeat};
    constexpr std::size_t kTypeCount = sizeof(types) / sizeof(types[0]);
    for (int round = 0; round < 8; ++round) {
        std::string stream;
        const std::size_t frames = 1 + rnd(4);
        for (std::size_t f = 0; f < frames; ++f) {
            std::string payload(rnd(40), '\0');
            for (auto& c : payload) c = static_cast<char>(rnd(256));
            appendFrame(stream, types[rnd(kTypeCount)], payload);
        }
        {  // clean stream decodes completely
            FrameDecoder d;
            d.feed(stream);
            std::size_t n = 0;
            while (d.next()) ++n;
            EXPECT_EQ(n, frames);
            EXPECT_TRUE(d.drained());
        }
        for (std::size_t pos = 0; pos < stream.size(); ++pos) {
            std::string bad = stream;
            bad[pos] = static_cast<char>(bad[pos] ^ (1u << rnd(8)));
            FrameDecoder d;
            d.feed(bad);
            try {
                while (d.next()) {
                }
            } catch (const pd::Error&) {
                // detected damage: exactly what the protocol promises
            }
        }
    }
}

// ---- newest-wins delta merge ----------------------------------------------

TEST(ShardMerge, NewestLruStampWinsAndTiesGoToTheLaterDelta) {
    std::vector<CacheDelta> deltas = {
        {"a", "a-from-w0", 5},
        {"b", "b-from-w0", 9},
        {"a", "a-from-w1", 7},   // newer stamp: wins
        {"b", "b-from-w1", 2},   // older stamp: loses
        {"c", "c-from-w1", 1},
        {"a", "a-from-w2", 7},   // equal stamp: later delta wins
    };
    const auto merged = mergeCacheDeltas(std::move(deltas));
    ASSERT_EQ(merged.size(), 3u);
    // First-seen key order is preserved.
    EXPECT_EQ(merged[0].key, "a");
    EXPECT_EQ(merged[0].payload, "a-from-w2");
    EXPECT_EQ(merged[1].key, "b");
    EXPECT_EQ(merged[1].payload, "b-from-w0");
    EXPECT_EQ(merged[2].key, "c");
    EXPECT_EQ(merged[2].payload, "c-from-w1");
}

// ---- end-to-end ------------------------------------------------------------

TEST(ShardEngine, ShardedBatchesMatchInProcessAcross124) {
    if (!workerExe()) GTEST_SKIP() << "no worker executable configured";
    const auto specs = lightSpecs();
    const auto reference = Engine(shardOptions(0)).runBatch(specs);
    for (const auto& r : reference) ASSERT_TRUE(r.ok) << r.error;
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{4}}) {
        Engine engine(shardOptions(shards));
        const auto results = engine.runBatch(specs);
        ASSERT_EQ(results.size(), reference.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
            ASSERT_TRUE(results[i].ok)
                << "shards=" << shards << ": " << results[i].error;
            expectSameSemantics(reference[i], results[i]);
            EXPECT_GE(results[i].shard, 0) << "shards=" << shards;
        }
    }
}

TEST(ShardEngine, ProbeThreadsStayByteIdenticalAcrossTheWire) {
    // The probe sweep is deterministic at any thread count, so a sharded
    // run whose workers fan probes out over --probe-threads (plumbed via
    // the worker argv and the pd-shard-wire-v2 job frames) must match
    // the sequential in-process run semantically, field for field.
    if (!workerExe()) GTEST_SKIP() << "no worker executable configured";
    const auto specs = lightSpecs();
    const auto reference = Engine(shardOptions(0)).runBatch(specs);
    for (const auto& r : reference) ASSERT_TRUE(r.ok) << r.error;

    auto opt = shardOptions(2);
    opt.probeThreads = 2;
    Engine engine(opt);
    const auto results = engine.runBatch(specs);
    ASSERT_EQ(results.size(), reference.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].ok) << results[i].error;
        expectSameSemantics(reference[i], results[i]);
        EXPECT_GE(results[i].shard, 0);
    }

    // Per-job probeThreads must survive the job frame too (engine-level
    // adoption is only applied to jobs that carry 0).
    auto perJob = specs;
    for (auto& ps : perJob) ps.options.probeThreads = 2;
    Engine engine2(shardOptions(2));
    const auto results2 = engine2.runBatch(perJob);
    for (std::size_t i = 0; i < results2.size(); ++i) {
        ASSERT_TRUE(results2[i].ok) << results2[i].error;
        expectSameSemantics(reference[i], results2[i]);
    }
}

TEST(ShardEngine, KeepMappedNetlistCrossesTheWireIntact) {
    if (!workerExe()) GTEST_SKIP() << "no worker executable configured";
    JobSpec spec;
    spec.benchmark = "majority7";
    spec.keepMapped = true;
    const auto reference = Engine(shardOptions(0)).runJob(spec);
    ASSERT_TRUE(reference.ok) << reference.error;
    const auto sharded = Engine(shardOptions(2)).runJob(spec);
    ASSERT_TRUE(sharded.ok) << sharded.error;
    expectSameSemantics(reference, sharded);
    expectSameNetlist(reference.mapped, sharded.mapped);
}

TEST(ShardEngine, BenchPointerSpecsRunOnTheLocalLane) {
    if (!workerExe()) GTEST_SKIP() << "no worker executable configured";
    auto bench = circuits::makeNamedBenchmark("counter8");
    ASSERT_TRUE(bench.has_value());
    JobSpec local;
    local.name = "local-lane";
    local.bench = std::make_shared<const circuits::Benchmark>(*bench);
    JobSpec wire;
    wire.benchmark = "majority7";

    Engine engine(shardOptions(2));
    const auto results = engine.runBatch({local, wire});
    ASSERT_EQ(results.size(), 2u);
    ASSERT_TRUE(results[0].ok) << results[0].error;
    ASSERT_TRUE(results[1].ok) << results[1].error;
    EXPECT_EQ(results[0].shard, -1);  // executed in this process
    EXPECT_GE(results[1].shard, 0);   // executed in a worker
}

TEST(ShardEngine, ShardedStoreIsByteIdenticalToInProcess) {
    if (!workerExe()) GTEST_SKIP() << "no worker executable configured";
    const auto specs = lightSpecs();
    TempFile inproc("store_inproc");
    TempFile sharded("store_sharded");
    {
        Engine engine(shardOptions(0, inproc.path()));
        for (const auto& r : engine.runBatch(specs))
            ASSERT_TRUE(r.ok) << r.error;
        ASSERT_TRUE(engine.flushCache());
    }
    {
        Engine engine(shardOptions(2, sharded.path()));
        for (const auto& r : engine.runBatch(specs))
            ASSERT_TRUE(r.ok) << r.error;
        ASSERT_TRUE(engine.flushCache());
    }
    std::ifstream a(inproc.path(), std::ios::binary);
    std::ifstream b(sharded.path(), std::ios::binary);
    std::stringstream sa, sb;
    sa << a.rdbuf();
    sb << b.rdbuf();
    ASSERT_GT(sa.str().size(), 0u);
    EXPECT_EQ(sa.str(), sb.str())
        << "a sharded run must leave the same warm artifact bits a "
           "single-process run would";
}

TEST(ShardEngine, WorkersWarmStartFromASharedStore) {
    if (!workerExe()) GTEST_SKIP() << "no worker executable configured";
    const auto specs = lightSpecs();
    TempFile store("warm");
    {
        Engine engine(shardOptions(2, store.path()));
        for (const auto& r : engine.runBatch(specs))
            ASSERT_TRUE(r.ok) << r.error;
        ASSERT_TRUE(engine.flushCache());
    }
    Engine warm(shardOptions(2, store.path()));
    const auto results = warm.runBatch(specs);
    for (const auto& r : results) {
        ASSERT_TRUE(r.ok) << r.error;
        EXPECT_TRUE(r.cacheHit) << r.name;
        EXPECT_EQ(r.cacheSource, CacheSource::kDisk) << r.name;
    }
}

// ---- socket transport & liveness ------------------------------------------

[[nodiscard]] EngineOptions socketOptions(std::size_t shards,
                                          std::string cacheFile = {}) {
    EngineOptions opt = shardOptions(shards, std::move(cacheFile));
    opt.shardTransport = "socket";
    return opt;
}

TEST(ShardTransport, SocketBatchesMatchInProcessAcross12) {
    // The transport is pure plumbing: the same pd-shard-wire frames over
    // a localhost connection must yield field-identical results.
    if (!workerExe()) GTEST_SKIP() << "no worker executable configured";
    const auto specs = lightSpecs();
    const auto reference = Engine(shardOptions(0)).runBatch(specs);
    for (const auto& r : reference) ASSERT_TRUE(r.ok) << r.error;
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2}}) {
        Engine engine(socketOptions(shards));
        const auto results = engine.runBatch(specs);
        ASSERT_EQ(results.size(), reference.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
            ASSERT_TRUE(results[i].ok)
                << "shards=" << shards << ": " << results[i].error;
            expectSameSemantics(reference[i], results[i]);
            EXPECT_GE(results[i].shard, 0) << "shards=" << shards;
        }
        // Fault-free socket run: liveness machinery must stay silent.
        EXPECT_EQ(engine.resilience().heartbeatMisses, 0u);
        EXPECT_EQ(engine.resilience().deadlineKills, 0u);
        EXPECT_EQ(engine.resilience().wirePoisons, 0u);
    }
}

TEST(ShardTransport, SocketStoreIsByteIdenticalToPipe) {
    // The flushed warm artifact must not betray which transport carried
    // the frames (the persist fingerprint deliberately excludes it).
    if (!workerExe()) GTEST_SKIP() << "no worker executable configured";
    const auto specs = lightSpecs();
    TempFile pipeStore("store_pipe");
    TempFile sockStore("store_sock");
    {
        Engine engine(shardOptions(2, pipeStore.path()));
        for (const auto& r : engine.runBatch(specs))
            ASSERT_TRUE(r.ok) << r.error;
        ASSERT_TRUE(engine.flushCache());
    }
    {
        Engine engine(socketOptions(2, sockStore.path()));
        for (const auto& r : engine.runBatch(specs))
            ASSERT_TRUE(r.ok) << r.error;
        ASSERT_TRUE(engine.flushCache());
    }
    std::ifstream a(pipeStore.path(), std::ios::binary);
    std::ifstream b(sockStore.path(), std::ios::binary);
    std::stringstream sa, sb;
    sa << a.rdbuf();
    sb << b.rdbuf();
    ASSERT_GT(sa.str().size(), 0u);
    EXPECT_EQ(sa.str(), sb.str());
}

TEST(ShardTransport, UnknownTransportNameFailsTheBatch) {
    EngineOptions opt = shardOptions(2);
    opt.shardTransport = "carrier-pigeon";
    Engine engine(opt);
    EXPECT_THROW((void)engine.runBatch(lightSpecs()), pd::Error);
}

TEST(ShardLiveness, HeartbeatsKeepAHangingWorkerAlivePastTheDeadline) {
    // A worker parked inside a job keeps beating from the pump thread,
    // so a deadline several beats long must never fire — the wall
    // budget, not liveness, owns the hung-job failure mode. This also
    // pins the supervision rule: any received bytes (a beat, a partial
    // kResult) reset the silence clock, so a live-but-busy worker is
    // never killed mid-frame.
    if (!workerExe()) GTEST_SKIP() << "no worker executable configured";
    ScopedEnv hang(kHangJobEnv, "majority7");
    EngineOptions opt = socketOptions(1);
    opt.shardWallMsPerJob = 1200;
    opt.shardHeartbeatMs = 300;  // four 75 ms beats per deadline
    Engine engine(opt);
    JobSpec s;
    s.benchmark = "majority7";
    const auto results = engine.runBatch({s});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_NE(results[0].error.find("wall budget"), std::string::npos)
        << results[0].error;
    EXPECT_EQ(engine.resilience().heartbeatMisses, 0u);
    EXPECT_EQ(engine.resilience().deadlineKills, 0u);
}

TEST(ShardLiveness, SilentWorkerIsKilledAtTheDeadlineAndTheJobRetried) {
    // SIGSTOP freezes the whole worker — pump included — so only the
    // coordinator's heartbeat deadline can reap it. The victim job is
    // retried on another worker (which stalls on the same name, so the
    // final verdict is the retried-once failure); every other job
    // survives and the coordinator never hangs.
    if (!workerExe()) GTEST_SKIP() << "no worker executable configured";
    ScopedEnv stall(kStallJobEnv, "counter8");
    EngineOptions opt = socketOptions(2);
    opt.shardHeartbeatMs = 400;
    Engine engine(opt);
    const auto results = engine.runBatch(lightSpecs());
    ASSERT_EQ(results.size(), 4u);
    for (const auto& r : results) {
        if (r.name == "counter8") {
            EXPECT_FALSE(r.ok);
            EXPECT_NE(r.error.find("heartbeat deadline"), std::string::npos)
                << r.error;
            EXPECT_NE(r.error.find("retried once"), std::string::npos)
                << r.error;
        } else {
            EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
        }
    }
    const auto& res = engine.resilience();
    EXPECT_GE(res.heartbeatMisses, 1u);
    EXPECT_GE(res.deadlineKills, 1u);
    EXPECT_GE(res.retries, 1u);
}

TEST(ShardLiveness, OneSkippedBeatNeverKills) {
    // The deadline is four beat intervals exactly so a single lost
    // heartbeat (scheduling jitter, a dropped wakeup) is harmless.
    if (!workerExe()) GTEST_SKIP() << "no worker executable configured";
    ScopedFaults faults("shard.sock.hb.skip:n1");
    EngineOptions opt = socketOptions(2);
    opt.shardHeartbeatMs = 400;
    Engine engine(opt);
    const auto results = engine.runBatch(lightSpecs());
    for (const auto& r : results)
        EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
    EXPECT_EQ(engine.resilience().deadlineKills, 0u);
}

TEST(ShardLiveness, BeatingWorkerSurvivesDrainUntilTheDrainBudget) {
    // A worker wedged in shutdown keeps beating, so drain-time liveness
    // supervision must not reap it early — only the drain budget may.
    // (The converse — a *silent* drain straggler dying at the heartbeat
    // deadline instead of the full drain budget — is why supervision
    // runs in the drain loop at all.)
    if (!workerExe()) GTEST_SKIP() << "no worker executable configured";
    ScopedFaults faults("shard.worker.drain.hang:n1");
    EngineOptions opt = socketOptions(1);
    opt.shardHeartbeatMs = 300;
    opt.shardDrainMs = 1000;
    Engine engine(opt);
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = engine.runBatch(lightSpecs());
    const auto elapsedMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    for (const auto& r : results)
        EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
    EXPECT_EQ(engine.resilience().heartbeatMisses, 0u);
    EXPECT_EQ(engine.resilience().deadlineKills, 0u);
    EXPECT_LT(elapsedMs, 30000) << "drain must still time out";
}

TEST(ShardLiveness, TornConnectionMidStreamIsACountedCrash) {
    // shard.sock.read simulates the coordinator-side half of a torn
    // connection: the worker is killed, the death is charged like any
    // crash, the slot respawns (a counted reconnect), and the batch
    // completes.
    if (!workerExe()) GTEST_SKIP() << "no worker executable configured";
    ScopedFaults faults("shard.sock.read:n2");
    Engine engine(socketOptions(2));
    const auto results = engine.runBatch(lightSpecs());
    ASSERT_EQ(results.size(), 4u);
    const auto& res = engine.resilience();
    EXPECT_GE(res.workerCrashes, 1u);
    EXPECT_GE(res.reconnects + res.workerRespawns, 1u);
    for (const auto& r : results)
        EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
}

TEST(ShardTransport, SocketAcceptFaultIsASpawnFailureNotACrash) {
    // A connection that never establishes books spawn-failure
    // accounting: no retry budget charged, no crash counted, and the
    // respawned slot picks the work up.
    if (!workerExe()) GTEST_SKIP() << "no worker executable configured";
    ScopedFaults faults("shard.sock.accept:n1");
    Engine engine(socketOptions(2));
    const auto results = engine.runBatch(lightSpecs());
    for (const auto& r : results)
        EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
    const auto& res = engine.resilience();
    EXPECT_GE(res.spawnFailures, 1u);
    EXPECT_EQ(res.workerCrashes, 0u);
    EXPECT_EQ(res.retries, 0u);
}

// ---- crash isolation -------------------------------------------------------

TEST(ShardEngine, CrashedJobFailsAloneAfterOneRetry) {
    if (!workerExe()) GTEST_SKIP() << "no worker executable configured";
    ScopedEnv crash(kCrashJobEnv, "counter8");
    TempFile store("crash");
    std::vector<JobResult> results;
    {
        Engine engine(shardOptions(2, store.path()));
        results = engine.runBatch(lightSpecs());
        ASSERT_TRUE(engine.flushCache());
    }
    ASSERT_EQ(results.size(), 4u);
    std::size_t failed = 0;
    for (const auto& r : results) {
        if (r.name == "counter8") {
            ++failed;
            EXPECT_FALSE(r.ok);
            EXPECT_NE(r.error.find("retried once"), std::string::npos)
                << r.error;
        } else {
            EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
        }
    }
    EXPECT_EQ(failed, 1u);

    // No partial flush: the store holds exactly the three surviving
    // jobs' entries and loads clean (checksums verified by load()).
    const auto loaded = persist::CacheStore::load(
        store.path(), persistFingerprint(shardOptions(2)));
    ASSERT_TRUE(loaded.ok()) << loaded.detail;
    EXPECT_EQ(loaded.entries.size(), 3u);
}

TEST(ShardEngine, CrashWithSingleWorkerStillRespawnsAndCompletes) {
    if (!workerExe()) GTEST_SKIP() << "no worker executable configured";
    ScopedEnv crash(kCrashJobEnv, "majority7");
    Engine engine(shardOptions(1));
    const auto results = engine.runBatch(lightSpecs());
    ASSERT_EQ(results.size(), 4u);
    for (const auto& r : results) {
        if (r.name == "majority7")
            EXPECT_FALSE(r.ok);
        else
            EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
    }
}

TEST(ShardEngine, WallBudgetKillsHangingWorkers) {
    if (!workerExe()) GTEST_SKIP() << "no worker executable configured";
    ScopedEnv hang(kHangJobEnv, "majority7");
    EngineOptions opt = shardOptions(1);
    // Only the hanging job runs, so the test is immune to CPU starvation
    // from parallel test binaries (a real companion job could be starved
    // past any budget on a loaded 1-CPU host): the sleeping worker never
    // completes whatever the load, the deadline kill fires, and the
    // retry hangs and dies the same way. Batch-completes-around-a-victim
    // is covered by the crash tests above.
    opt.shardWallMsPerJob = 1200;
    Engine engine(opt);
    JobSpec s;
    s.benchmark = "majority7";
    const auto results = engine.runBatch({s});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_NE(results[0].error.find("wall budget"), std::string::npos)
        << results[0].error;
}

TEST(ShardEngine, WorkerPoolCollapseFallsBackToInProcess) {
    // /bin/false exits immediately without ever speaking the protocol:
    // every slot retires after two startup crashes, and the queued jobs
    // must degrade to in-process execution — same results, fallback
    // provenance — never a hung coordinator or a failed batch.
    if (::access("/bin/false", X_OK) != 0) GTEST_SKIP();
    EngineOptions opt = shardOptions(2);
    opt.shardWorkerExe = "/bin/false";
    Engine engine(opt);
    JobSpec s;
    s.benchmark = "majority7";
    const auto results = engine.runBatch({s});
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].ok) << results[0].error;
    EXPECT_EQ(results[0].shard, -1);
    EXPECT_TRUE(results[0].shardFallback);
    EXPECT_EQ(engine.resilience().fallbackJobs, 1u);
}

TEST(ShardEngine, SpawnFailureIsCountedApartAndCostsNoRetries) {
    // An exec failure (exit 127) means the worker binary never ran: the
    // respawned slot picks the work up, no job's retry budget is
    // charged, and the failure is counted apart from genuine crashes.
    if (!workerExe()) GTEST_SKIP() << "no worker executable configured";
    ScopedFaults faults("shard.worker.spawn:n1");
    Engine engine(shardOptions(2));
    const auto results = engine.runBatch(lightSpecs());
    for (const auto& r : results)
        EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
    const auto& res = engine.resilience();
    EXPECT_GE(res.spawnFailures, 1u);
    EXPECT_EQ(res.workerCrashes, 0u);
    EXPECT_EQ(res.retries, 0u);
}

TEST(ShardEngine, RetriesDisabledFailsOnTheFirstCrash) {
    if (!workerExe()) GTEST_SKIP() << "no worker executable configured";
    ScopedEnv crash(kCrashJobEnv, "counter8");
    EngineOptions opt = shardOptions(2);
    opt.shardRetries = 0;
    Engine engine(opt);
    const auto results = engine.runBatch(lightSpecs());
    for (const auto& r : results) {
        if (r.name == "counter8") {
            EXPECT_FALSE(r.ok);
            EXPECT_NE(r.error.find("retries disabled by --shard-retries 0"),
                      std::string::npos)
                << r.error;
        } else {
            EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
        }
    }
    EXPECT_EQ(engine.resilience().retries, 0u);
}

TEST(ShardEngine, RetryBudgetGrantsTheConfiguredAttempts) {
    if (!workerExe()) GTEST_SKIP() << "no worker executable configured";
    ScopedEnv crash(kCrashJobEnv, "counter8");
    EngineOptions opt = shardOptions(2);
    opt.shardRetries = 2;
    Engine engine(opt);
    const auto results = engine.runBatch(lightSpecs());
    for (const auto& r : results) {
        if (r.name == "counter8") {
            EXPECT_FALSE(r.ok);
            EXPECT_NE(r.error.find("already retried 2 times"),
                      std::string::npos)
                << r.error;
        } else {
            EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
        }
    }
    EXPECT_EQ(engine.resilience().retries, 2u);
    EXPECT_GE(engine.resilience().workerCrashes, 3u);
}

TEST(ShardEngine, DrainTimeoutBoundsAWedgedWorkerShutdown) {
    // The worker receives the forwarded fault plan, computes every job
    // normally, then parks forever instead of answering the shutdown
    // frame. Only the configured drain budget (not the 60 s default)
    // stands between the finished batch and a hang; deltas were already
    // streamed after each job, so the kill loses nothing.
    if (!workerExe()) GTEST_SKIP() << "no worker executable configured";
    ScopedFaults faults("shard.worker.drain.hang:n1");
    EngineOptions opt = shardOptions(1);
    opt.shardDrainMs = 300;
    Engine engine(opt);
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = engine.runBatch(lightSpecs());
    const auto elapsedMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    for (const auto& r : results)
        EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
    EXPECT_LT(elapsedMs, 30000) << "drain must time out, not wait forever";
}

TEST(ShardEngine, ShutdownRequestInterruptsTheBatchButStillFlushes) {
    // A shutdown requested before the batch starts: every job comes back
    // as interrupted (never silently dropped), and the store still
    // flushes to a loadable artifact.
    if (!workerExe()) GTEST_SKIP() << "no worker executable configured";
    TempFile store("shutdown");
    util::requestShutdown();
    Engine engine(shardOptions(2, store.path()));
    const auto results = engine.runBatch(lightSpecs());
    const bool flushed = engine.flushCache();
    util::clearShutdownForTest();
    ASSERT_EQ(results.size(), 4u);
    for (const auto& r : results) {
        EXPECT_FALSE(r.ok) << r.name;
        EXPECT_NE(r.error.find(util::kInterruptedError), std::string::npos)
            << r.name << ": " << r.error;
    }
    EXPECT_TRUE(flushed);
    const auto loaded = persist::CacheStore::load(
        store.path(), persistFingerprint(shardOptions(2)));
    EXPECT_TRUE(loaded.ok()) << loaded.detail;
}

// ---- pd_cli batch exit-code contract ---------------------------------------

/// Runs the pd_cli binary (the same one the shard tests use for
/// workers) through the shell; returns the exit status or -1.
int runCli(const std::string& cmd) {
    const int rc = std::system(cmd.c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

TEST(CliExitCodes, ZeroAllOkTwoPartialOneFatalSixtyFourUsage) {
    if (!workerExe()) GTEST_SKIP() << "no worker executable configured";
    const std::string cli = workerExe();
    EXPECT_EQ(runCli(cli + " batch majority7 >/dev/null 2>&1"), 0);
    // One injected per-job failure: the batch ran, so partial = 2.
    EXPECT_EQ(runCli("PD_FAULTS=engine.job.fail:n1 " + cli +
                     " batch majority7 >/dev/null 2>&1"),
              2);
    // A failed store flush is an engine failure: fatal = 1 even though
    // every job succeeded.
    TempFile store("exitcodes");
    EXPECT_EQ(runCli("PD_FAULTS=persist.save.enospc:n1 " + cli +
                     " batch majority7 --cache-file " + store.path() +
                     " >/dev/null 2>&1"),
              1);
    EXPECT_EQ(runCli(cli + " batch --not-a-flag >/dev/null 2>&1"), 64);
    // Transport knobs share the contract: a bogus transport name or an
    // out-of-range ms value is a usage error, a valid socket run is 0.
    EXPECT_EQ(runCli(cli + " batch majority7 --shards 1 --shard-transport "
                           "bogus >/dev/null 2>&1"),
              64);
    EXPECT_EQ(runCli(cli + " batch majority7 --shard-heartbeat-ms "
                           "99999999999 >/dev/null 2>&1"),
              64);
    EXPECT_EQ(runCli(cli + " batch majority7 --shard-drain-ms "
                           "99999999999 >/dev/null 2>&1"),
              64);
    EXPECT_EQ(runCli(cli + " expr --shard-transport socket \"f=a^b\" "
                           ">/dev/null 2>&1"),
              64);  // batch-only flag outside batch mode
    EXPECT_EQ(runCli(cli + " batch majority7 --shards 1 --shard-transport "
                           "socket >/dev/null 2>&1"),
              0);
}

TEST(CliExitCodes, SigtermDrainsReportsAndExitsTwo) {
    // SIGTERM mid-batch: the coordinator purges the queue as
    // interrupted, grants the in-flight (hanging) job its drain grace,
    // kills it, and the process still writes the report and exits with
    // the partial-failure code — never dies signal-fatally.
    if (!workerExe()) GTEST_SKIP() << "no worker executable configured";
    const std::string report = std::string(::testing::TempDir()) +
                               "pd_sigterm_report_" +
                               std::to_string(::getpid()) + ".json";
    std::remove(report.c_str());
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::setenv(kHangJobEnv, "majority7", 1);
        (void)::freopen("/dev/null", "w", stdout);
        (void)::freopen("/dev/null", "w", stderr);
        ::execl(workerExe(), workerExe(), "batch", "majority7", "counter8",
                "--shards", "1", "--shard-drain-ms", "500", "--json",
                report.c_str(), static_cast<char*>(nullptr));
        ::_exit(127);
    }
    // Let the batch get in flight on the hanging job (if the signal
    // lands earlier, both jobs are purged from the queue — same
    // contract, same exit code).
    std::this_thread::sleep_for(std::chrono::milliseconds(1500));
    ASSERT_EQ(::kill(pid, SIGTERM), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "must drain on SIGTERM, not die";
    EXPECT_EQ(WEXITSTATUS(status), 2);
    std::ifstream in(report);
    ASSERT_TRUE(in.good()) << "report must still be written";
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_NE(ss.str().find("interrupted"), std::string::npos);
    std::remove(report.c_str());
}

}  // namespace
}  // namespace pd::engine::shard
