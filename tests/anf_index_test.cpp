// Differential tests for the indexed-ANF hot-path kernel.
//
// Every IndexedAnf operation (xor, product, substitution, spanning-set
// construction, sum-membership with witness) is fuzz-checked against the
// reference Anf implementation: the sorted-vector domain is the oracle,
// the bitset-over-ids domain must agree exactly — including witness
// CHOICE, not just witness validity, because findBasis results must be
// byte-identical whichever path computed them.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "anf/anf.hpp"
#include "anf/indexed.hpp"
#include "anf/ops.hpp"
#include "core/basis.hpp"
#include "core/pairlist.hpp"
#include "ring/identity_db.hpp"
#include "ring/membership.hpp"
#include "ring/nullspace.hpp"
#include "util/error.hpp"

namespace pd {
namespace {

using anf::Anf;
using anf::IndexedAnf;
using anf::Monomial;
using anf::MonomialIndexer;

/// Deterministic xorshift — fuzz inputs must be reproducible.
class Rng {
public:
    explicit Rng(std::uint64_t seed) : s_(seed ? seed : 1) {}
    std::uint64_t next() {
        s_ ^= s_ << 13;
        s_ ^= s_ >> 7;
        s_ ^= s_ << 17;
        return s_;
    }
    std::size_t below(std::size_t n) { return next() % n; }

private:
    std::uint64_t s_;
};

Monomial randomMonomial(Rng& rng, anf::Var maxVar, std::size_t maxDeg) {
    Monomial m;
    const std::size_t deg = rng.below(maxDeg + 1);
    for (std::size_t i = 0; i < deg; ++i)
        m.insert(static_cast<anf::Var>(rng.below(maxVar)));
    return m;
}

Anf randomAnf(Rng& rng, anf::Var maxVar, std::size_t maxTerms,
              std::size_t maxDeg = 3) {
    std::vector<Monomial> terms;
    const std::size_t n = rng.below(maxTerms + 1);
    for (std::size_t i = 0; i < n; ++i)
        terms.push_back(randomMonomial(rng, maxVar, maxDeg));
    return Anf::fromTerms(std::move(terms));
}

TEST(AnfIndexTest, RoundTripPreservesCanonicalForm) {
    Rng rng(17);
    for (int it = 0; it < 200; ++it) {
        MonomialIndexer ix;
        const Anf e = randomAnf(rng, 12, 10);
        const auto indexed = IndexedAnf::fromAnf(ix, e);
        EXPECT_EQ(indexed.toAnf(ix), e);
        EXPECT_EQ(indexed.termCount(), e.termCount());
        EXPECT_EQ(indexed.isZero(), e.isZero());
    }
}

TEST(AnfIndexTest, XorMatchesReference) {
    Rng rng(23);
    for (int it = 0; it < 200; ++it) {
        MonomialIndexer ix;
        const Anf a = randomAnf(rng, 12, 10);
        const Anf b = randomAnf(rng, 12, 10);
        auto ia = IndexedAnf::fromAnf(ix, a);
        const auto ib = IndexedAnf::fromAnf(ix, b);
        ia ^= ib;
        EXPECT_EQ(ia.toAnf(ix), a ^ b);
    }
}

TEST(AnfIndexTest, XorAcrossDifferentWidths) {
    MonomialIndexer ix;
    const Anf small = Anf::var(0);
    auto a = IndexedAnf::fromAnf(ix, small);
    // Grow the id space after `a` was encoded.
    const Anf big = Anf::var(1) * Anf::var(2) ^ Anf::var(3);
    auto b = IndexedAnf::fromAnf(ix, big);
    b ^= a;  // wider ^= narrower
    EXPECT_EQ(b.toAnf(ix), big ^ small);
    auto c = IndexedAnf::fromAnf(ix, small);
    c ^= IndexedAnf::fromAnf(ix, big);  // narrower ^= wider
    EXPECT_EQ(c.toAnf(ix), big ^ small);
    EXPECT_TRUE(IndexedAnf{} == IndexedAnf{});
    EXPECT_TRUE(b == c);
    EXPECT_EQ(b.hash(), c.hash());
}

TEST(AnfIndexTest, ProductMatchesReference) {
    Rng rng(31);
    for (int it = 0; it < 200; ++it) {
        MonomialIndexer ix;
        const Anf a = randomAnf(rng, 10, 8);
        const Anf b = randomAnf(rng, 10, 8);
        const auto ia = IndexedAnf::fromAnf(ix, a);
        const auto ib = IndexedAnf::fromAnf(ix, b);
        EXPECT_EQ(indexedProduct(ix, ia, ib).toAnf(ix), a * b);
    }
}

TEST(AnfIndexTest, ProductMemoIsConsistentAcrossQueries) {
    // Re-using one indexer across many products exercises memo hits.
    Rng rng(37);
    MonomialIndexer ix;
    for (int it = 0; it < 100; ++it) {
        const Anf a = randomAnf(rng, 8, 6);
        const Anf b = randomAnf(rng, 8, 6);
        const auto ia = IndexedAnf::fromAnf(ix, a);
        const auto ib = IndexedAnf::fromAnf(ix, b);
        EXPECT_EQ(indexedProduct(ix, ia, ib).toAnf(ix), a * b);
    }
}

TEST(AnfIndexTest, SubstituteMatchesReference) {
    Rng rng(41);
    for (int it = 0; it < 100; ++it) {
        MonomialIndexer ix;
        const Anf e = randomAnf(rng, 10, 8);
        std::unordered_map<anf::Var, Anf> map;
        std::unordered_map<anf::Var, IndexedAnf> imap;
        const std::size_t nsub = 1 + rng.below(3);
        for (std::size_t i = 0; i < nsub; ++i) {
            const auto v = static_cast<anf::Var>(rng.below(10));
            const Anf repl = randomAnf(rng, 10, 4);
            if (map.emplace(v, repl).second)
                imap.emplace(v, IndexedAnf::fromAnf(ix, repl));
        }
        const auto ie = IndexedAnf::fromAnf(ix, e);
        EXPECT_EQ(indexedSubstitute(ix, ie, imap).toAnf(ix),
                  anf::substitute(e, map));
    }
}

ring::NullSpaceRing randomRing(Rng& rng, std::size_t maxGens) {
    ring::NullSpaceRing r;
    const std::size_t n = rng.below(maxGens + 1);
    for (std::size_t i = 0; i < n; ++i)
        r.addGenerator(randomAnf(rng, 8, 4, 2));
    return r;
}

TEST(AnfIndexTest, IndexedSpanningSetMatchesReferenceElementwise) {
    Rng rng(47);
    for (int it = 0; it < 100; ++it) {
        MonomialIndexer ix;
        const auto ring = randomRing(rng, 4);
        const auto ref = ring.spanningSet(64);
        const auto& indexed = ring.indexedSpanningSet(ix, 64);
        ASSERT_EQ(indexed.size(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i) {
            EXPECT_EQ(indexed[i].expr, ref[i]) << "element " << i;
            // termIds must be the expression in canonical order.
            ASSERT_EQ(indexed[i].termIds.size(), ref[i].termCount());
            for (std::size_t t = 0; t < indexed[i].termIds.size(); ++t)
                EXPECT_EQ(ix.monomialAt(indexed[i].termIds[t]),
                          ref[i].terms()[t]);
        }
        // Cached: second call returns the same object state.
        const auto& again = ring.indexedSpanningSet(ix, 64);
        EXPECT_EQ(&again, &indexed);
    }
}

TEST(AnfIndexTest, SpanningSetCacheInvalidatedByNewGenerator) {
    MonomialIndexer ix;
    ring::NullSpaceRing r;
    r.addGenerator(Anf::var(1));
    EXPECT_EQ(r.indexedSpanningSet(ix, 64).size(), r.spanningSet(64).size());
    r.addGenerator(Anf::var(2) ^ Anf::var(3));
    const auto& span = r.indexedSpanningSet(ix, 64);
    const auto ref = r.spanningSet(64);
    ASSERT_EQ(span.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_EQ(span[i].expr, ref[i]);
}

TEST(AnfIndexTest, MemberOfSumAgreesWithReferenceIncludingWitness) {
    Rng rng(53);
    std::size_t members = 0;
    for (int it = 0; it < 300; ++it) {
        const auto r1 = randomRing(rng, 3);
        const auto r2 = randomRing(rng, 3);
        // Mix guaranteed members (XOR of span elements) with random
        // targets so both outcomes are exercised.
        Anf target;
        if (it % 2 == 0) {
            target = randomAnf(rng, 8, 6, 2);
        } else {
            for (const auto& e : r1.spanningSet(64))
                if (rng.below(2)) target ^= e;
            for (const auto& e : r2.spanningSet(64))
                if (rng.below(2)) target ^= e;
        }
        const auto ref = ring::memberOfSum(target, r1, r2, 64);
        ring::MembershipContext ctx;
        const auto fast = ring::memberOfSum(ctx, target, r1, r2, 64);
        ASSERT_EQ(fast.member, ref.member) << "iteration " << it;
        if (ref.member) {
            ++members;
            // The exact same witness, not merely a valid one.
            EXPECT_EQ(fast.part1, ref.part1);
            EXPECT_EQ(fast.part2, ref.part2);
            EXPECT_EQ(fast.part1 ^ fast.part2, target);
        }
    }
    EXPECT_GT(members, 50u);  // the generator must actually hit members
}

TEST(AnfIndexTest, MemberOfSumSharedContextReusesCaches) {
    Rng rng(59);
    ring::MembershipContext ctx;
    for (int it = 0; it < 100; ++it) {
        const auto r1 = randomRing(rng, 3);
        const auto r2 = randomRing(rng, 3);
        const Anf target = randomAnf(rng, 8, 6, 2);
        const auto ref = ring::memberOfSum(target, r1, r2, 64);
        const auto fast = ring::memberOfSum(ctx, target, r1, r2, 64);
        ASSERT_EQ(fast.member, ref.member);
        if (ref.member) {
            EXPECT_EQ(fast.part1, ref.part1);
            EXPECT_EQ(fast.part2, ref.part2);
        }
    }
}

/// Reference findBasis pipeline assembled from the public Anf-domain
/// pieces — what findBasis computed before the indexed kernel.
core::BasisResult referenceFindBasis(const Anf& folded,
                                     const anf::VarSet& group,
                                     const ring::IdentityDb& ids,
                                     const core::FindBasisOptions& opt) {
    core::BasisResult out;
    const auto split = anf::splitByGroup(folded, group);
    out.untouched = split.untouched;

    std::vector<Monomial> order;
    std::vector<std::vector<Monomial>> rests;
    for (const auto& t : split.touching.terms()) {
        const Monomial g = t.restrictedTo(group);
        const Monomial r = t.without(group);
        std::size_t idx = order.size();
        for (std::size_t i = 0; i < order.size(); ++i)
            if (order[i] == g) {
                idx = i;
                break;
            }
        if (idx == order.size()) {
            order.push_back(g);
            rests.emplace_back();
        }
        rests[idx].push_back(r);
    }
    core::PairList pairs;
    for (std::size_t i = 0; i < order.size(); ++i) {
        core::BPair p;
        p.first = Anf::term(order[i]);
        p.second = Anf::fromTerms(std::move(rests[i]));
        if (p.second.isZero()) continue;
        p.ns = ids.nullspaceOfMonomial(order[i], opt.complementNullspace);
        pairs.push_back(std::move(p));
    }
    core::mergeAlgebraic(pairs);
    if (opt.useNullspaceMerging) {
        while (core::mergeNullspace(pairs, opt)) core::mergeAlgebraic(pairs);
    }
    core::sortPairs(pairs);
    out.pairs = std::move(pairs);
    return out;
}

ring::IdentityDb randomIdentityDb(Rng& rng) {
    ring::IdentityDb db;
    const std::size_t n = rng.below(4);
    for (std::size_t i = 0; i < n; ++i) {
        const auto v = static_cast<anf::Var>(rng.below(6));
        const Anf e = randomAnf(rng, 8, 3, 2);
        db.add(Anf::var(v) * e);
    }
    return db;
}

TEST(AnfIndexTest, FindBasisMatchesReferencePipeline) {
    Rng rng(61);
    for (int it = 0; it < 150; ++it) {
        const Anf folded = randomAnf(rng, 10, 24);
        anf::VarSet group;
        const std::size_t k = 1 + rng.below(4);
        for (std::size_t i = 0; i < k; ++i)
            group.insert(static_cast<anf::Var>(rng.below(6)));
        const auto db = randomIdentityDb(rng);
        core::FindBasisOptions opt;
        const auto fast = core::findBasis(folded, group, db, opt);
        const auto ref = referenceFindBasis(folded, group, db, opt);
        EXPECT_EQ(fast.untouched, ref.untouched);
        ASSERT_EQ(fast.pairs.size(), ref.pairs.size()) << "iteration " << it;
        for (std::size_t i = 0; i < ref.pairs.size(); ++i) {
            EXPECT_EQ(fast.pairs[i].first, ref.pairs[i].first);
            EXPECT_EQ(fast.pairs[i].second, ref.pairs[i].second);
        }
        // The decomposition invariant regardless of merging depth.
        EXPECT_EQ(core::pairListValue(fast.pairs) ^ fast.untouched, folded);
        EXPECT_FALSE(fast.budgetExhausted);
    }
}

TEST(AnfIndexTest, BudgetedFindBasisIsSoundAndReportsTruncation) {
    Rng rng(67);
    std::size_t truncated = 0;
    for (int it = 0; it < 150; ++it) {
        const Anf folded = randomAnf(rng, 10, 24);
        anf::VarSet group;
        for (std::size_t i = 0; i < 3; ++i)
            group.insert(static_cast<anf::Var>(rng.below(6)));
        const auto db = randomIdentityDb(rng);
        core::FindBasisOptions opt;
        opt.mergeAttemptBudget = 1;
        const auto res = core::findBasis(folded, group, db, opt);
        // Whatever was or wasn't merged, the algebra must hold.
        EXPECT_EQ(core::pairListValue(res.pairs) ^ res.untouched, folded);
        EXPECT_LE(res.mergeAttempts, 1u);
        if (res.budgetExhausted) ++truncated;
    }
    EXPECT_GT(truncated, 0u);  // budget 1 must bite somewhere
}

TEST(AnfIndexTest, ContextFreeMergesNeverMintCollidingIds) {
    // BPair::id invariant: an id is only meaningful within the context
    // that minted it. The context-free merge overloads therefore hand
    // mutated pairs id 0 (unversioned) instead of fresh ids that could
    // collide with ids from the caller's context — a collision is how a
    // false failed-merge memo hit (a silently skipped valid merge) would
    // arise.
    core::PairList pairs(3);
    pairs[0].first = Anf::var(0);
    pairs[0].second = Anf::var(5);
    pairs[0].id = 7;
    pairs[1].first = Anf::var(1);
    pairs[1].second = Anf::var(5);  // equal seconds: merges with pairs[0]
    pairs[1].id = 8;
    pairs[2].first = Anf::var(2);
    pairs[2].second = Anf::var(6);  // untouched
    pairs[2].id = 9;
    core::mergeAlgebraic(pairs);
    ASSERT_EQ(pairs.size(), 2u);
    EXPECT_EQ(pairs[0].id, 0u) << "merged pair must be unversioned";
    EXPECT_EQ(pairs[1].id, 9u) << "unchanged pair keeps its version";
}

TEST(AnfIndexTest, MonomialInsertBeyondCapacityThrows) {
    Monomial m;
    EXPECT_THROW(m.insert(Monomial::kMaxVars), Error);
    EXPECT_THROW(m.insert(Monomial::kMaxVars + 100), Error);
    // The monomial is untouched by the failed insert.
    EXPECT_TRUE(m.isOne());
    m.insert(Monomial::kMaxVars - 1);  // boundary id still fine
    EXPECT_TRUE(m.contains(Monomial::kMaxVars - 1));
}

}  // namespace
}  // namespace pd
