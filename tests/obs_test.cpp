// pd-trace unit tests: histogram bucket math, the metrics registry and
// its delta/merge algebra, span rings + ScopedSpan gating, the Chrome
// trace and Prometheus exporters (validated with the repo's own JSON
// parser), the leveled logger, and the kObs wire codec.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "engine/shard/protocol.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace pd {
namespace {

class ObsTest : public ::testing::Test {
protected:
    void SetUp() override {
        obs::resetMetricsForTest();
        obs::setEnabled(true);
        (void)obs::drainSpans();  // flush spans left by earlier tests
        obs::resetMetricsForTest();
    }
    void TearDown() override {
        obs::setEnabled(false);
        (void)obs::drainSpans();
        obs::resetMetricsForTest();
    }
};

TEST_F(ObsTest, HistogramBucketIndex) {
    EXPECT_EQ(obs::Histogram::bucketIndex(0), 0u);
    EXPECT_EQ(obs::Histogram::bucketIndex(1), 0u);
    EXPECT_EQ(obs::Histogram::bucketIndex(2), 1u);
    EXPECT_EQ(obs::Histogram::bucketIndex(3), 2u);
    EXPECT_EQ(obs::Histogram::bucketIndex(4), 2u);
    EXPECT_EQ(obs::Histogram::bucketIndex(5), 3u);
    EXPECT_EQ(obs::Histogram::bucketIndex(1024), 10u);
    EXPECT_EQ(obs::Histogram::bucketIndex(1025), 11u);
    // 2^31 lands in the last finite bucket; anything above overflows.
    EXPECT_EQ(obs::Histogram::bucketIndex(1ull << 31), 31u);
    EXPECT_EQ(obs::Histogram::bucketIndex((1ull << 31) + 1), 32u);
    EXPECT_EQ(obs::Histogram::bucketIndex(UINT64_MAX), 32u);
}

TEST_F(ObsTest, HistogramObserveAndMerge) {
    obs::Histogram h;
    h.observe(1);
    h.observe(3);
    h.observe(3);
    h.observe(5000);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 5007u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(2), 2u);
    EXPECT_EQ(h.bucketCount(13), 1u);  // 5000 <= 8192

    std::array<std::uint64_t, obs::Histogram::kBuckets> more{};
    more[0] = 7;
    more[32] = 1;
    h.merge(more, 8, 1000);
    EXPECT_EQ(h.count(), 12u);
    EXPECT_EQ(h.sum(), 6007u);
    EXPECT_EQ(h.bucketCount(0), 8u);
    EXPECT_EQ(h.bucketCount(32), 1u);
}

TEST_F(ObsTest, RegistryReturnsStableReferences) {
    obs::Counter& a = obs::counter("test.counter");
    obs::Counter& b = obs::counter("test.counter");
    EXPECT_EQ(&a, &b);
    a.add(3);
    EXPECT_EQ(b.value(), 3u);

    obs::gauge("test.gauge").set(-5);
    EXPECT_EQ(obs::gauge("test.gauge").value(), -5);
    obs::gauge("test.gauge").setMax(2);
    EXPECT_EQ(obs::gauge("test.gauge").value(), 2);
    obs::gauge("test.gauge").setMax(-10);  // lower: no effect
    EXPECT_EQ(obs::gauge("test.gauge").value(), 2);
}

TEST_F(ObsTest, SnapshotAndDelta) {
    obs::counter("d.a").add(10);
    obs::counter("d.b").add(1);
    obs::histogram("d.h").observe(100);
    const obs::MetricsSnapshot before = obs::snapshotMetrics();

    obs::counter("d.a").add(5);
    obs::histogram("d.h").observe(7);
    obs::gauge("d.g").set(42);
    const obs::MetricsSnapshot after = obs::snapshotMetrics();

    const obs::MetricsSnapshot delta = obs::deltaMetrics(after, before);
    // d.b did not move: elided. d.a carries only the increment.
    std::uint64_t a = 0;
    bool sawB = false;
    for (const auto& [name, value] : delta.counters) {
        if (name == "d.a") a = value;
        if (name == "d.b") sawB = true;
    }
    EXPECT_EQ(a, 5u);
    EXPECT_FALSE(sawB);

    bool sawG = false;
    for (const auto& [name, value] : delta.gauges)
        if (name == "d.g") {
            sawG = true;
            EXPECT_EQ(value, 42);
        }
    EXPECT_TRUE(sawG);

    for (const auto& h : delta.histograms)
        if (h.name == "d.h") {
            EXPECT_EQ(h.count, 1u);
            EXPECT_EQ(h.sum, 7u);
        }
}

TEST_F(ObsTest, ApplyWorkerDelta) {
    obs::counter("w.jobs").add(2);
    obs::MetricsSnapshot delta;
    delta.counters.emplace_back("w.jobs", 3);
    delta.gauges.emplace_back("w.rss", 512);
    obs::HistogramSample h;
    h.name = "w.h";
    h.buckets[4] = 2;
    h.count = 2;
    h.sum = 20;
    delta.histograms.push_back(h);

    obs::applyWorkerDelta(delta, 1);
    EXPECT_EQ(obs::counter("w.jobs").value(), 5u);
    EXPECT_EQ(obs::gauge("w.rss.w1").value(), 512);
    EXPECT_EQ(obs::gauge("w.rss").value(), 512);  // running max
    EXPECT_EQ(obs::histogram("w.h").count(), 2u);
    EXPECT_EQ(obs::histogram("w.h").bucketCount(4), 2u);

    // A second, smaller worker must not lower the base gauge.
    obs::MetricsSnapshot delta2;
    delta2.gauges.emplace_back("w.rss", 100);
    obs::applyWorkerDelta(delta2, 0);
    EXPECT_EQ(obs::gauge("w.rss.w0").value(), 100);
    EXPECT_EQ(obs::gauge("w.rss").value(), 512);
}

TEST_F(ObsTest, SpansDrainInOrderWithIdentity) {
    obs::setJobFingerprint(0xabcdef);
    obs::emitSpan("t.one", "test", 100, 50);
    obs::emitSpan("t.two", "test", 200, 25, "k=v");
    obs::setJobFingerprint(0);
    const auto spans = obs::drainSpans();
    ASSERT_GE(spans.size(), 2u);
    // Find ours (other tests' threads may have contributed).
    const obs::Span* one = nullptr;
    const obs::Span* two = nullptr;
    for (const auto& s : spans) {
        if (s.name == "t.one") one = &s;
        if (s.name == "t.two") two = &s;
    }
    ASSERT_NE(one, nullptr);
    ASSERT_NE(two, nullptr);
    EXPECT_EQ(one->fp, 0xabcdefu);
    EXPECT_EQ(one->startNs, 100u);
    EXPECT_EQ(one->durNs, 50u);
    EXPECT_EQ(two->detail, "k=v");
    EXPECT_EQ(two->seq, one->seq + 1);  // per-thread monotone sequence
    EXPECT_EQ(one->pid, 0);

    // Drained: a second drain returns nothing new from this thread.
    for (const auto& s : obs::drainSpans()) {
        EXPECT_NE(s.name, "t.one");
        EXPECT_NE(s.name, "t.two");
    }
}

TEST_F(ObsTest, ScopedSpanRespectsEnableAndMinDuration) {
    {
        obs::ScopedSpan s("t.scoped", "test");
        EXPECT_TRUE(s.live());
        s.setDetail("x");
    }
    {
        // A generous gate no trivial scope can pass.
        obs::ScopedSpan s("t.gated", "test",
                          /*minDurNs=*/3'600'000'000'000ull);
    }
    obs::setEnabled(false);
    {
        obs::ScopedSpan s("t.disabled", "test");
        EXPECT_FALSE(s.live());
    }
    obs::setEnabled(true);

    bool sawScoped = false;
    for (const auto& s : obs::drainSpans()) {
        if (s.name == "t.scoped") sawScoped = true;
        EXPECT_NE(s.name, "t.gated");
        EXPECT_NE(s.name, "t.disabled");
    }
    EXPECT_TRUE(sawScoped);
}

TEST_F(ObsTest, AdoptedSpansComeBackOnNextDrain) {
    std::vector<obs::Span> foreign(1);
    foreign[0].name = "t.adopted";
    foreign[0].pid = 3;
    obs::adoptSpans(std::move(foreign));
    bool saw = false;
    for (const auto& s : obs::drainSpans())
        if (s.name == "t.adopted") {
            saw = true;
            EXPECT_EQ(s.pid, 3);
        }
    EXPECT_TRUE(saw);
}

TEST_F(ObsTest, SpansFromWorkerThreadsAreDrained) {
    std::thread t([] { obs::emitSpan("t.thread", "test", 1, 1); });
    t.join();
    bool saw = false;
    for (const auto& s : obs::drainSpans())
        if (s.name == "t.thread") saw = true;
    EXPECT_TRUE(saw);
}

TEST_F(ObsTest, ChromeTraceIsValidJson) {
    obs::emitSpan("t.json", "test", 1500, 2500, "detail \"quoted\"");
    const auto spans = obs::drainSpans();
    std::ostringstream os;
    obs::writeChromeTrace(os, spans, {{0, "pd test"}, {1, "pd worker 0"}});

    util::JsonValue doc;
    std::string error;
    ASSERT_TRUE(util::parseJson(os.str(), doc, &error)) << error;
    const util::JsonValue* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    bool sawMeta = false;
    bool sawSpan = false;
    for (const auto& e : events->asArray()) {
        const auto& ph = e.find("ph")->asString();
        if (ph == "M") {
            sawMeta = true;
            EXPECT_EQ(e.find("name")->asString(), "process_name");
        }
        if (ph == "X" && e.find("name")->asString() == "t.json") {
            sawSpan = true;
            EXPECT_DOUBLE_EQ(e.find("ts")->asNumber(), 1.5);
            EXPECT_DOUBLE_EQ(e.find("dur")->asNumber(), 2.5);
            const util::JsonValue* detail = e.findPath("args.detail");
            ASSERT_NE(detail, nullptr);
            EXPECT_EQ(detail->asString(), "detail \"quoted\"");
        }
    }
    EXPECT_TRUE(sawMeta);
    EXPECT_TRUE(sawSpan);
    EXPECT_EQ(doc.find("displayTimeUnit")->asString(), "ms");
}

TEST_F(ObsTest, PrometheusExposition) {
    obs::counter("p.hits").add(3);
    obs::gauge("p.rss").set(17);
    obs::histogram("p.lat").observe(5);
    std::ostringstream os;
    obs::writePrometheus(os, obs::snapshotMetrics());
    const std::string text = os.str();
    EXPECT_NE(text.find("pd_p_hits_total 3\n"), std::string::npos);
    EXPECT_NE(text.find("pd_p_rss 17\n"), std::string::npos);
    // 5 lands in le=8; cumulative buckets mean every later le includes it.
    EXPECT_NE(text.find("pd_p_lat_bucket{le=\"8\"} 1"), std::string::npos);
    EXPECT_NE(text.find("pd_p_lat_bucket{le=\"+Inf\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("pd_p_lat_sum 5\n"), std::string::npos);
    EXPECT_NE(text.find("pd_p_lat_count 1\n"), std::string::npos);
}

TEST_F(ObsTest, ObsDeltaCodecRoundTrips) {
    engine::shard::ObsDelta d;
    obs::Span s;
    s.name = "probe.sweep";
    s.cat = "probe";
    s.detail = "candidates=9";
    s.startNs = 123456789;
    s.durNs = 1000;
    s.fp = 0xdeadbeef;
    s.seq = 7;
    s.tid = 2;
    d.spans.push_back(s);
    d.metrics.counters.emplace_back("cache.hit", 4);
    d.metrics.gauges.emplace_back("worker.rss_mb", 321);
    obs::HistogramSample h;
    h.name = "persist.entry.bytes";
    h.buckets[9] = 3;
    h.count = 3;
    h.sum = 1200;
    d.metrics.histograms.push_back(h);

    const std::string payload = engine::shard::encodeObsDelta(d);
    const engine::shard::ObsDelta back =
        engine::shard::decodeObsDelta(payload);
    ASSERT_EQ(back.spans.size(), 1u);
    EXPECT_EQ(back.spans[0].name, "probe.sweep");
    EXPECT_EQ(back.spans[0].detail, "candidates=9");
    EXPECT_EQ(back.spans[0].startNs, 123456789u);
    EXPECT_EQ(back.spans[0].fp, 0xdeadbeefu);
    EXPECT_EQ(back.spans[0].seq, 7u);
    EXPECT_EQ(back.spans[0].tid, 2u);
    ASSERT_EQ(back.metrics.counters.size(), 1u);
    EXPECT_EQ(back.metrics.counters[0].first, "cache.hit");
    EXPECT_EQ(back.metrics.counters[0].second, 4u);
    ASSERT_EQ(back.metrics.gauges.size(), 1u);
    EXPECT_EQ(back.metrics.gauges[0].second, 321);
    ASSERT_EQ(back.metrics.histograms.size(), 1u);
    EXPECT_EQ(back.metrics.histograms[0].buckets[9], 3u);
    EXPECT_EQ(back.metrics.histograms[0].sum, 1200u);

    // Truncated payloads must error, not misparse.
    EXPECT_THROW(engine::shard::decodeObsDelta(
                     std::string_view(payload).substr(0, payload.size() - 3)),
                 std::exception);
}

TEST_F(ObsTest, LogLevelParsing) {
    EXPECT_EQ(log::parseLevel("debug"), log::Level::kDebug);
    EXPECT_EQ(log::parseLevel("info"), log::Level::kInfo);
    EXPECT_EQ(log::parseLevel("warn"), log::Level::kWarn);
    EXPECT_EQ(log::parseLevel("error"), log::Level::kError);
    EXPECT_EQ(log::parseLevel("off"), log::Level::kOff);
    // Typos fall back to the default rather than silencing errors.
    EXPECT_EQ(log::parseLevel("nonsense"), log::Level::kWarn);

    const log::Level saved = log::threshold();
    log::setThreshold(log::Level::kError);
    EXPECT_FALSE(log::enabled(log::Level::kWarn));
    EXPECT_TRUE(log::enabled(log::Level::kError));
    log::setThreshold(saved);
}

}  // namespace
}  // namespace pd
