// Benchmark generator tests: reference semantics, ANF specs, and SOP
// specs agree with each other.
#include <gtest/gtest.h>

#include "anf/ops.hpp"
#include "circuits/adder.hpp"
#include "circuits/comparator.hpp"
#include "circuits/counter.hpp"
#include "circuits/lzd.hpp"
#include "circuits/majority.hpp"

namespace pd::circuits {
namespace {

/// Checks ANF outputs against the reference on every assignment (total
/// input width must be small).
void expectAnfMatchesReference(const Benchmark& bench) {
    ASSERT_TRUE(static_cast<bool>(bench.anf));
    anf::VarTable vt;
    const auto outs = bench.anf(vt);
    ASSERT_EQ(outs.size(), bench.outputNames.size());

    std::size_t total = 0;
    for (const auto& p : bench.ports) total += static_cast<std::size_t>(p.width);
    ASSERT_LE(total, 18u);

    for (std::uint64_t m = 0; m < (std::uint64_t{1} << total); ++m) {
        anf::Assignment assign;
        std::vector<std::uint64_t> values(bench.ports.size(), 0);
        std::size_t bit = 0;
        for (std::size_t p = 0; p < bench.ports.size(); ++p)
            for (int q = 0; q < bench.ports[p].width; ++q, ++bit)
                if ((m >> bit) & 1u) {
                    assign.insert(static_cast<anf::Var>(bit));
                    values[p] |= std::uint64_t{1} << q;
                }
        const std::uint64_t expect = bench.reference(values);
        for (std::size_t o = 0; o < outs.size(); ++o)
            ASSERT_EQ(outs[o].evaluate(assign),
                      static_cast<bool>((expect >> o) & 1u))
                << bench.name << " output " << bench.outputNames[o]
                << " at input " << m;
    }
}

/// Checks that the SOP spec evaluates like the reference, by evaluating
/// cubes directly.
void expectSopMatchesReference(const Benchmark& bench) {
    ASSERT_TRUE(static_cast<bool>(bench.sop));
    anf::VarTable vt;
    const auto spec = bench.sop(vt);
    ASSERT_EQ(spec.outputs.size(), bench.outputNames.size());

    std::size_t total = 0;
    for (const auto& p : bench.ports) total += static_cast<std::size_t>(p.width);
    ASSERT_LE(total, 16u);

    for (std::uint64_t m = 0; m < (std::uint64_t{1} << total); ++m) {
        std::vector<std::uint64_t> values(bench.ports.size(), 0);
        std::size_t bit = 0;
        anf::Monomial trueVars;
        for (std::size_t p = 0; p < bench.ports.size(); ++p)
            for (int q = 0; q < bench.ports[p].width; ++q, ++bit)
                if ((m >> bit) & 1u) {
                    values[p] |= std::uint64_t{1} << q;
                    trueVars.insert(static_cast<anf::Var>(bit));
                }
        const std::uint64_t expect = bench.reference(values);
        for (std::size_t o = 0; o < spec.outputs.size(); ++o) {
            bool val = false;
            for (const auto& cube : spec.outputs[o].cubes) {
                if (cube.pos.subsetOf(trueVars) &&
                    !cube.neg.intersects(trueVars)) {
                    val = true;
                    break;
                }
            }
            ASSERT_EQ(val, static_cast<bool>((expect >> o) & 1u))
                << bench.name << "/" << spec.outputs[o].name << " at " << m;
        }
    }
}

TEST(Lzd, ReferenceSemantics) {
    const auto b = makeLzd(16);
    // clz(0x8000..) etc.
    EXPECT_EQ(b.reference(std::vector<std::uint64_t>{0x8000}), 0u);
    EXPECT_EQ(b.reference(std::vector<std::uint64_t>{0x4000}), 1u);
    EXPECT_EQ(b.reference(std::vector<std::uint64_t>{0x0001}), 15u);
    // The all-zero word aliases to 0 (paper Fig. 1: no position term x_i
    // fires), keeping a0 alive in the specification.
    EXPECT_EQ(b.reference(std::vector<std::uint64_t>{0x0000}), 0u);
    EXPECT_EQ(b.reference(std::vector<std::uint64_t>{0xffff}), 0u);
}

TEST(Lzd, AnfMatchesReference16) {
    expectAnfMatchesReference(makeLzd(16));
}

TEST(Lzd, SopMatchesReference16) {
    expectSopMatchesReference(makeLzd(16));
}

TEST(Lzd, Width8) {
    expectAnfMatchesReference(makeLzd(8));
    expectSopMatchesReference(makeLzd(8));
}

TEST(Lzd, RefusesIntractableAnf) {
    const auto b = makeLzd(32);
    EXPECT_FALSE(static_cast<bool>(b.anf));  // 2^31 terms — refused
    EXPECT_TRUE(static_cast<bool>(b.sop));
}

TEST(Lod, ReferenceSemantics) {
    const auto b = makeLod(16);
    // The all-one word aliases to 0 (the LOD dual of LZD's all-zero rule).
    EXPECT_EQ(b.reference(std::vector<std::uint64_t>{0xffff}), 0u);
    EXPECT_EQ(b.reference(std::vector<std::uint64_t>{0x0000}), 0u);
    EXPECT_EQ(b.reference(std::vector<std::uint64_t>{0x7fff}), 0u);
    EXPECT_EQ(b.reference(std::vector<std::uint64_t>{0xfffe}), 15u);
    EXPECT_EQ(b.reference(std::vector<std::uint64_t>{0xc000}), 2u);
}

TEST(Lod, AnfMatchesReference16) {
    expectAnfMatchesReference(makeLod(16));
}

TEST(Lod, AnfIsCompact32) {
    // The paper's point: LOD's Reed-Muller form stays small (2 monomials
    // per position) even at 32 bits.
    const auto b = makeLod(32);
    ASSERT_TRUE(static_cast<bool>(b.anf));
    anf::VarTable vt;
    const auto outs = b.anf(vt);
    std::size_t total = 0;
    for (const auto& e : outs) total += e.termCount();
    EXPECT_LE(total, 200u);
}

TEST(Majority, AnfAndSopMatchReference) {
    expectAnfMatchesReference(makeMajority(7));
    expectSopMatchesReference(makeMajority(7));
}

TEST(Majority, Anf15IsThe8SubsetXor) {
    anf::VarTable vt;
    const auto outs = makeMajority(15).anf(vt);
    ASSERT_EQ(outs.size(), 1u);
    // C(15,8) = 6435 monomials, all of degree 8.
    EXPECT_EQ(outs[0].termCount(), 6435u);
    for (const auto& t : outs[0].terms()) EXPECT_EQ(t.degree(), 8u);
}

TEST(Majority, RejectsEvenN) {
    EXPECT_THROW(makeMajority(4), Error);
}

TEST(Counter, AnfMatchesReference) {
    expectAnfMatchesReference(makeCounter(6));
    expectAnfMatchesReference(makeCounter(8));
}

TEST(Counter, OutputWidth) {
    EXPECT_EQ(makeCounter(16).outputNames.size(), 5u);
    EXPECT_EQ(makeCounter(15).outputNames.size(), 4u);
    EXPECT_EQ(makeCounter(3).outputNames.size(), 2u);
}

TEST(Counter, Anf16SizesAreBinomial) {
    anf::VarTable vt;
    const auto outs = makeCounter(16).anf(vt);
    ASSERT_EQ(outs.size(), 5u);
    EXPECT_EQ(outs[0].termCount(), 16u);     // e1
    EXPECT_EQ(outs[1].termCount(), 120u);    // e2
    EXPECT_EQ(outs[2].termCount(), 1820u);   // e4
    EXPECT_EQ(outs[3].termCount(), 12870u);  // e8
    EXPECT_EQ(outs[4].termCount(), 1u);      // e16
}

TEST(Adder, AnfMatchesReference) {
    expectAnfMatchesReference(makeAdder(4));
    expectAnfMatchesReference(makeAdder(6));
}

TEST(Adder, CarryTermGrowth) {
    anf::VarTable vt;
    const auto outs = makeAdder(8).anf(vt);
    // s8 = carry-out of 8 bits: 2^8 - 1 = 255 terms.
    EXPECT_EQ(outs[8].termCount(), 255u);
}

TEST(Adder3, AnfMatchesReference) {
    expectAnfMatchesReference(makeAdder3(4));
}

TEST(Adder3, RippleAnfHelper) {
    anf::VarTable vt;
    const auto a0 = anf::Anf::var(vt.addInput("a0", 0, 0));
    const auto b0 = anf::Anf::var(vt.addInput("b0", 1, 0));
    const auto s = rippleAnf({a0}, {b0});
    ASSERT_EQ(s.size(), 2u);
    EXPECT_EQ(s[0], a0 ^ b0);
    EXPECT_EQ(s[1], a0 * b0);
}

TEST(Comparator, AnfMatchesReference) {
    expectAnfMatchesReference(makeComparator(4));
    expectAnfMatchesReference(makeComparator(8));
}

TEST(Comparator, TermCountIs3PowN) {
    anf::VarTable vt;
    const auto outs = makeComparator(6).anf(vt);
    EXPECT_EQ(outs[0].termCount(), 728u);  // 3^6 - 1: the 3^n growth law
}

TEST(Comparator, RefusesIntractableWidths) {
    const auto b = makeComparator(15, /*maxAnfWidth=*/13);
    EXPECT_FALSE(static_cast<bool>(b.anf));
    EXPECT_TRUE(static_cast<bool>(b.reference));
}

}  // namespace
}  // namespace pd::circuits
