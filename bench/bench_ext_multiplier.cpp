// Extension experiment (beyond Table 1): the multiplier workload the
// paper's references [10] (TGA partial-product compressors) and [13]
// (Wallace trees) point at. Progressive Decomposition runs on the flat
// Reed-Muller form of an n×n multiplier and is compared, through the
// same optimize→map→STA flow, against the two classic manual
// architectures. Measured shape (a documented negative result): unlike
// the 3-operand adder, the multiplier's two-dimensional partial-product
// structure defeats the one-dimensional LSB grouping heuristic — PD's
// residual stays near-flat and both manual trees win decisively. See
// EXPERIMENTS.md ("extension: multiplier").
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "circuits/multiplier.hpp"
#include "core/decomposer.hpp"
#include "eval/report.hpp"

namespace {

pd::eval::BenchReport multiplierReport(int n) {
    pd::eval::BenchReport rep;
    rep.title = std::to_string(n) + "x" + std::to_string(n) +
                " Multiplier (extension; paper refs [10], [13])";
    pd::eval::Flow flow;
    const auto bench = pd::circuits::makeMultiplier(n);
    rep.rows.push_back(flow.runNetlist(
        "Array multiplier (serial rows)", pd::circuits::arrayMultiplier(n),
        bench, 0, 0));
    if (bench.anf)
        rep.rows.push_back(flow.runPd("Progressive Decomposition", bench, 0, 0));
    rep.rows.push_back(flow.runNetlist(
        "Wallace tree + ripple", pd::circuits::wallaceMultiplier(n, false),
        bench, 0, 0));
    rep.rows.push_back(flow.runNetlist(
        "Wallace tree + prefix adder",
        pd::circuits::wallaceMultiplier(n, true), bench, 0, 0));
    pd::eval::satCrossCheck(rep);
    return rep;
}

void BM_DecomposeMultiplier(benchmark::State& state) {
    const auto bench =
        pd::circuits::makeMultiplier(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        pd::anf::VarTable vt;
        const auto outs = bench.anf(vt);
        const auto d = pd::core::decompose(vt, outs, bench.outputNames);
        benchmark::DoNotOptimize(d.blocks.size());
    }
}
BENCHMARK(BM_DecomposeMultiplier)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    // 4x4 runs in seconds; 5x5 (where PD's residual stays near-flat and
    // the QoR gap widens — see EXPERIMENTS.md "extension: multiplier")
    // takes minutes through the PD row, so it is opt-in.
    std::cout << pd::eval::formatReport(multiplierReport(4)) << '\n';
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--mul5")
            std::cout << pd::eval::formatReport(multiplierReport(5)) << '\n';
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
