// Table 1, 16-bit counter row: adder tree 1251.1µm² 0.86ns, Progressive
// Decomposition 1427.3µm² 0.74ns, TGA 1066.2µm² 0.71ns — the one row the
// paper loses on area to the baseline and on both metrics to TGA (which
// also optimizes interconnection scheduling, §6).
#include <benchmark/benchmark.h>

#include <iostream>

#include "circuits/counter.hpp"
#include "core/decomposer.hpp"
#include "eval/report.hpp"

namespace {

void BM_DecomposeCounter16(benchmark::State& state) {
    const auto bench = pd::circuits::makeCounter(16);
    for (auto _ : state) {
        pd::anf::VarTable vt;
        const auto outs = bench.anf(vt);
        const auto d = pd::core::decompose(vt, outs, bench.outputNames);
        benchmark::DoNotOptimize(d.blocks.size());
    }
}
BENCHMARK(BM_DecomposeCounter16)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    std::cout << pd::eval::formatReport(pd::eval::rowCounter16()) << '\n';
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
