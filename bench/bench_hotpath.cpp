// Hot-path kernel microbench: the three operations the decomposition
// loop lives in — ANF products, null-space sum-membership solves, and
// findBasis pair merging — each measured in the reference (sorted-vector
// Anf) domain and the indexed (bitset-over-ids) domain, plus an
// end-to-end decompose. Results go to BENCH_hotpath.json
// ("pd-bench-hotpath-v1"):
//
//   {
//     "schema": "pd-bench-hotpath-v1",
//     "metrics": {              // tracked by the CI perf smoke gate
//       "product_indexed_us": f, "member_indexed_us": f,
//       "findbasis_us": f, "decompose_majority15_ms": f
//     },
//     "reference": {"product_ref_us": f, "member_ref_us": f},
//     "speedups": {"product": f, "member": f}
//   }
//
// scripts/check_hotpath.py fails CI when any entry of "metrics" regresses
// more than PD_HOTPATH_TOL× (default 2×) against the committed baseline —
// generous because shared runners are noisy, tight enough to catch a
// kernel falling off a cliff.
//
// A second document, BENCH_probe.json ("pd-bench-probe-v1"), covers the
// group-selection probe sweep: the exact sweep workload of a real
// majority15 decompose (captured via the probe capture hook) replayed
// through the incremental ProbeContext and through the sequential PR-4
// referenceSweep, plus end-to-end decompose times and per-phase
// breakdowns. The "speedups" ratio is measured within one run, so it is
// machine-independent; check_hotpath.py gates both documents with the
// same policy.
#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "anf/anf.hpp"
#include "anf/indexed.hpp"
#include "circuits/registry.hpp"
#include "core/basis.hpp"
#include "core/decomposer.hpp"
#include "core/group.hpp"
#include "core/probe/probe.hpp"
#include "engine/report_json.hpp"
#include "ring/identity_db.hpp"
#include "ring/membership.hpp"

namespace {

using pd::anf::Anf;
using pd::anf::IndexedAnf;
using pd::anf::Monomial;
using pd::anf::MonomialIndexer;

class Rng {
public:
    explicit Rng(std::uint64_t seed) : s_(seed ? seed : 1) {}
    std::uint64_t next() {
        s_ ^= s_ << 13;
        s_ ^= s_ >> 7;
        s_ ^= s_ << 17;
        return s_;
    }
    std::size_t below(std::size_t n) { return next() % n; }

private:
    std::uint64_t s_;
};

Anf randomAnf(Rng& rng, pd::anf::Var maxVar, std::size_t terms,
              std::size_t maxDeg) {
    std::vector<Monomial> ts;
    for (std::size_t i = 0; i < terms; ++i) {
        Monomial m;
        const std::size_t deg = 1 + rng.below(maxDeg);
        for (std::size_t d = 0; d < deg; ++d)
            m.insert(static_cast<pd::anf::Var>(rng.below(maxVar)));
        ts.push_back(m);
    }
    return Anf::fromTerms(std::move(ts));
}

template <typename Fn>
double timeUs(std::size_t reps, Fn&& fn) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < reps; ++i) fn(i);
    const auto us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    return us / static_cast<double>(reps);
}

}  // namespace

int main(int argc, char** argv) {
    const std::string jsonPath = argc > 1 ? argv[1] : "BENCH_hotpath.json";
    const std::string probeJsonPath = argc > 2 ? argv[2] : "BENCH_probe.json";

    // ---- ANF product: 48×48 terms over 14 variables. -------------------
    Rng rng(101);
    std::vector<Anf> lhs;
    std::vector<Anf> rhs;
    for (int i = 0; i < 16; ++i) {
        lhs.push_back(randomAnf(rng, 14, 48, 4));
        rhs.push_back(randomAnf(rng, 14, 48, 4));
    }
    std::size_t sink = 0;
    const double productRefUs = timeUs(64, [&](std::size_t i) {
        sink += (lhs[i % lhs.size()] * rhs[i % rhs.size()]).termCount();
    });
    MonomialIndexer productIx;
    std::vector<IndexedAnf> ilhs;
    std::vector<IndexedAnf> irhs;
    for (int i = 0; i < 16; ++i) {
        ilhs.push_back(IndexedAnf::fromAnf(productIx, lhs[static_cast<std::size_t>(i)]));
        irhs.push_back(IndexedAnf::fromAnf(productIx, rhs[static_cast<std::size_t>(i)]));
    }
    const double productIndexedUs = timeUs(64, [&](std::size_t i) {
        sink += indexedProduct(productIx, ilhs[i % ilhs.size()],
                               irhs[i % irhs.size()])
                    .termCount();
    });

    // ---- Membership solve: rings of 3 generators over 8 variables. -----
    Rng mrng(202);
    std::vector<pd::ring::NullSpaceRing> rings;
    for (int i = 0; i < 8; ++i) {
        pd::ring::NullSpaceRing r;
        for (int g = 0; g < 3; ++g) r.addGenerator(randomAnf(mrng, 8, 3, 2));
        rings.push_back(std::move(r));
    }
    std::vector<Anf> targets;
    for (int i = 0; i < 16; ++i) {
        // Half guaranteed members (XORs of span elements), half random.
        if (i % 2 == 0) {
            Anf t;
            for (const auto& e : rings[static_cast<std::size_t>(i) % rings.size()].spanningSet(64))
                if (mrng.below(2)) t ^= e;
            targets.push_back(std::move(t));
        } else {
            targets.push_back(randomAnf(mrng, 8, 4, 2));
        }
    }
    const double memberRefUs = timeUs(256, [&](std::size_t i) {
        sink += pd::ring::memberOfSum(targets[i % targets.size()],
                                      rings[i % rings.size()],
                                      rings[(i + 3) % rings.size()], 64)
                    .member;
    });
    pd::ring::MembershipContext mctx;
    const double memberIndexedUs = timeUs(256, [&](std::size_t i) {
        sink += pd::ring::memberOfSum(mctx, targets[i % targets.size()],
                                      rings[i % rings.size()],
                                      rings[(i + 3) % rings.size()], 64)
                    .member;
    });

    // ---- Pair merge: findBasis over a majority15-sized expression with a
    // seeded identity database so null-space merging fires. --------------
    pd::anf::VarTable vt;
    const auto bench = pd::circuits::makeNamedBenchmark("majority15");
    const auto outputs = bench->anf(vt);
    pd::ring::IdentityDb idb;
    Rng irng(303);
    for (int i = 0; i < 6; ++i)
        idb.add(Anf::var(static_cast<pd::anf::Var>(irng.below(15))) *
                randomAnf(irng, 15, 2, 2));
    pd::anf::VarSet group;
    for (pd::anf::Var v = 0; v < 4; ++v) group.insert(v);
    const double findBasisUs = timeUs(32, [&](std::size_t) {
        const auto res = pd::core::findBasis(outputs[0], group, idb, {});
        sink += res.pairs.size();
    });

    // ---- End to end: majority15 decompose under default options. -------
    const double decomposeMs = timeUs(3, [&](std::size_t) {
                                   pd::anf::VarTable tbl;
                                   const auto outs = bench->anf(tbl);
                                   const auto d = pd::core::decompose(
                                       tbl, outs, bench->outputNames, {});
                                   sink += d.blocks.size();
                               }) /
                               1000.0;

    // ---- Probe sweep: replay the exact group-selection workload of the
    // majority15 decompose (captured via the probe hook) through the
    // incremental ProbeContext and through the sequential PR-4
    // reference sweep. Same inputs, same winners — the ratio is the
    // probe-phase speedup, measured machine-independently. -------------
    struct CapturedSweep {
        pd::anf::Anf folded;
        std::vector<pd::anf::VarSet> candidates;
        pd::ring::IdentityDb ids;
    };
    std::vector<CapturedSweep> sweeps;
    pd::core::Decomposition probeDecomp;
    {
        pd::anf::VarTable tbl;
        const auto outs = bench->anf(tbl);
        pd::core::DecomposeOptions dopt;
        dopt.probeCaptureHook = [&](const pd::anf::Anf& f,
                                    const std::vector<pd::anf::VarSet>& c,
                                    const pd::ring::IdentityDb& i) {
            sweeps.push_back({f, c, i});
        };
        probeDecomp = pd::core::decompose(tbl, outs, bench->outputNames, dopt);
    }
    pd::core::GroupOptions gopt;
    gopt.probeMergeBudget = pd::core::kDefaultMergeAttemptBudget;
    double probeSweepMs = 1e300;
    double probeSweepRefMs = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
        probeSweepMs = std::min(
            probeSweepMs, timeUs(1, [&](std::size_t) {
                pd::core::probe::ProbeContext ctx;
                for (const auto& sw : sweeps)
                    sink += ctx.sweep(sw.folded, sw.candidates, sw.ids, gopt)
                                .score;
            }) / 1000.0);
        probeSweepRefMs = std::min(
            probeSweepRefMs, timeUs(1, [&](std::size_t) {
                for (const auto& sw : sweeps)
                    sink += pd::core::probe::referenceSweep(
                                sw.folded, sw.candidates, sw.ids, gopt)
                                .score;
            }) / 1000.0);
    }

    // ---- End to end: mul4 (exhaustive-sweep dominated; was 15+ s before
    // the incremental sweep). ------------------------------------------
    const auto mul4 = pd::circuits::makeNamedBenchmark("mul4");
    pd::core::Decomposition mul4Decomp;
    const double decomposeMul4Ms = timeUs(1, [&](std::size_t) {
                                       pd::anf::VarTable tbl;
                                       const auto outs = mul4->anf(tbl);
                                       mul4Decomp = pd::core::decompose(
                                           tbl, outs, mul4->outputNames, {});
                                       sink += mul4Decomp.blocks.size();
                                   }) /
                                   1000.0;

    std::cout << "anf product:      ref " << productRefUs << " us, indexed "
              << productIndexedUs << " us ("
              << productRefUs / productIndexedUs << "x)\n"
              << "membership solve: ref " << memberRefUs << " us, indexed "
              << memberIndexedUs << " us (" << memberRefUs / memberIndexedUs
              << "x)\n"
              << "findBasis merge:  " << findBasisUs << " us\n"
              << "decompose majority15: " << decomposeMs << " ms\n"
              << "probe sweep (majority15 workload): incremental "
              << probeSweepMs << " ms, reference " << probeSweepRefMs
              << " ms (" << probeSweepRefMs / probeSweepMs << "x)\n"
              << "decompose mul4: " << decomposeMul4Ms << " ms (probe "
              << mul4Decomp.probe.sweepMs << " ms)\n"
              << "(sink " << sink << ")\n";

    std::ofstream os(jsonPath);
    if (!os) {
        std::cerr << "cannot write " << jsonPath << "\n";
        return 1;
    }
    pd::engine::JsonWriter w(os);
    w.beginObject();
    w.field("schema", "pd-bench-hotpath-v1");
    w.key("metrics").beginObject();
    w.field("product_indexed_us", productIndexedUs);
    w.field("member_indexed_us", memberIndexedUs);
    w.field("findbasis_us", findBasisUs);
    w.field("decompose_majority15_ms", decomposeMs);
    w.endObject();
    w.key("reference").beginObject();
    w.field("product_ref_us", productRefUs);
    w.field("member_ref_us", memberRefUs);
    w.endObject();
    w.key("speedups").beginObject();
    w.field("product", productRefUs / productIndexedUs);
    w.field("member", memberRefUs / memberIndexedUs);
    w.endObject();
    w.endObject();
    std::cout << "wrote " << jsonPath << "\n";

    std::ofstream pos(probeJsonPath);
    if (!pos) {
        std::cerr << "cannot write " << probeJsonPath << "\n";
        return 1;
    }
    const auto breakdown = [](pd::engine::JsonWriter& jw,
                              const pd::core::Decomposition& d,
                              double totalMs) {
        jw.field("decompose_ms", totalMs);
        jw.field("probe_sweep_ms", d.probe.sweepMs);
        jw.field("probe_share",
                 totalMs > 0.0 ? d.probe.sweepMs / totalMs : 0.0);
        jw.field("sweeps", d.probe.sweeps);
        jw.field("candidates", d.probe.candidates);
        jw.field("probed", d.probe.probed);
        jw.field("pruned", d.probe.pruned);
        jw.field("deduped", d.probe.deduped);
        jw.field("basis_reuses", d.probe.basisReuses);
    };
    pd::engine::JsonWriter pw(pos);
    pw.beginObject();
    pw.field("schema", "pd-bench-probe-v1");
    pw.key("metrics").beginObject();
    pw.field("probe_sweep_majority15_ms", probeSweepMs);
    pw.field("decompose_majority15_ms", decomposeMs);
    pw.field("decompose_mul4_ms", decomposeMul4Ms);
    pw.endObject();
    pw.key("reference").beginObject();
    pw.field("probe_sweep_reference_majority15_ms", probeSweepRefMs);
    pw.endObject();
    pw.key("speedups").beginObject();
    pw.field("probe_sweep_majority15", probeSweepRefMs / probeSweepMs);
    pw.endObject();
    pw.key("breakdown").beginObject();
    pw.key("majority15").beginObject();
    breakdown(pw, probeDecomp, decomposeMs);
    pw.endObject();
    pw.key("mul4").beginObject();
    breakdown(pw, mul4Decomp, decomposeMul4Ms);
    pw.endObject();
    pw.endObject();
    pw.endObject();
    std::cout << "wrote " << probeJsonPath << "\n";
    return 0;
}
