// Table 1, LZD/LOD rows: regenerates the paper's
//   16-bit LZD/LOD : Unoptimised (SOP) 426.8µm² 0.36ns
//                    Progressive Dec.  392.3µm² 0.30ns
//   32-bit LOD     : Unoptimised (SOP) 1691.7µm² 0.54ns
//                    Progressive Dec.  1062.7µm² 0.43ns
// plus algorithm runtime benchmarks.
#include <benchmark/benchmark.h>

#include <iostream>

#include "circuits/lzd.hpp"
#include "core/decomposer.hpp"
#include "eval/report.hpp"

namespace {

void BM_DecomposeLzd16(benchmark::State& state) {
    const auto bench = pd::circuits::makeLzd(16);
    for (auto _ : state) {
        pd::anf::VarTable vt;
        const auto outs = bench.anf(vt);
        const auto d = pd::core::decompose(vt, outs, bench.outputNames);
        benchmark::DoNotOptimize(d.blocks.size());
    }
}
BENCHMARK(BM_DecomposeLzd16)->Unit(benchmark::kMillisecond);

void BM_DecomposeLod(benchmark::State& state) {
    const auto bench =
        pd::circuits::makeLod(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        pd::anf::VarTable vt;
        const auto outs = bench.anf(vt);
        const auto d = pd::core::decompose(vt, outs, bench.outputNames);
        benchmark::DoNotOptimize(d.blocks.size());
    }
}
BENCHMARK(BM_DecomposeLod)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    std::cout << pd::eval::formatReport(pd::eval::rowLzdLod16()) << '\n';
    std::cout << pd::eval::formatReport(pd::eval::rowLod32()) << '\n';
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
