// Engine throughput bench: jobs/sec on the named-benchmark batch at
// 1/2/4/8 worker threads, plus the cache-hit speedup of re-running an
// identical batch against a warm engine. Results are written as
// BENCH_engine.json ("pd-bench-engine-v1" schema, JsonWriter) so future
// changes have a perf trajectory to compare against:
//   {
//     "schema": "pd-bench-engine-v1",
//     "batch": [names...],
//     "configs": [{"threads": u, "cold_ms": f, "warm_ms": f,
//                  "jobs_per_sec_cold": f, "jobs_per_sec_warm": f,
//                  "warm_cache_hits": u, "speedup_vs_1_thread": f,
//                  "warm_speedup": f}, ...],
//     "summary": {"hardware_concurrency": u, "speedup_4_threads": f,
//                 "cache_speedup": f, "pass_parallel": b|"skipped",
//                 "pass_cache": b}
//   }
// Timings are machine-dependent; the pass_* flags encode the shape the
// bench is expected to keep (>1.5x at 4 threads, >=10x on a warm rerun).
// The parallel criterion is reported as "skipped" on hosts without at
// least 2 hardware threads — a thread pool cannot beat physics.
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "circuits/registry.hpp"
#include "engine/engine.hpp"
#include "engine/report_json.hpp"

namespace {

double msSince(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

struct ConfigResult {
    std::size_t threads = 0;
    double coldMs = 0.0;
    double warmMs = 0.0;
    std::uint64_t warmHits = 0;
};

}  // namespace

int main(int argc, char** argv) {
    const std::string jsonPath = argc > 1 ? argv[1] : "BENCH_engine.json";

    std::vector<pd::engine::JobSpec> specs;
    for (const auto& name : pd::circuits::benchmarkNames(false)) {
        pd::engine::JobSpec spec;
        spec.benchmark = name;
        specs.push_back(std::move(spec));
    }
    std::cout << "batch: " << specs.size() << " named benchmarks\n";

    std::vector<ConfigResult> configs;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        pd::engine::EngineOptions opt;
        opt.jobs = threads;
        opt.cacheCapacity = 2 * specs.size();
        // Keep verification meaningful but cheap: the bench measures the
        // engine, not the simulator.
        opt.equiv.randomBatches = 64;
        pd::engine::Engine engine(opt);

        ConfigResult cfg;
        cfg.threads = threads;

        auto start = std::chrono::steady_clock::now();
        const auto cold = engine.runBatch(specs);
        cfg.coldMs = msSince(start);
        for (const auto& r : cold) {
            if (!r.ok) {
                std::cerr << r.name << " failed: " << r.error << "\n";
                return 1;
            }
        }

        start = std::chrono::steady_clock::now();
        const auto warm = engine.runBatch(specs);
        cfg.warmMs = msSince(start);
        for (const auto& r : warm) cfg.warmHits += r.cacheHit ? 1 : 0;

        std::cout << threads << " thread(s): cold " << cfg.coldMs
                  << " ms (" << 1e3 * static_cast<double>(specs.size()) /
                                    cfg.coldMs
                  << " jobs/s), warm rerun " << cfg.warmMs << " ms ("
                  << cfg.warmHits << "/" << specs.size() << " cache hits)\n";
        configs.push_back(cfg);
    }

    // Core count detected at runtime: the parallel criterion is only
    // meaningful with at least two hardware threads, and the JSON
    // records both the count and the concrete skip reason so multi-core
    // hosts pick up the scaling trajectory automatically while 1-CPU
    // containers stay explainable.
    const unsigned hw = std::thread::hardware_concurrency();
    const double speedup4 = configs[0].coldMs / configs[2].coldMs;
    const double cacheSpeedup = configs[0].coldMs / configs[0].warmMs;
    const bool parallelMeasurable = hw >= 2;
    const std::string skipReason =
        parallelMeasurable
            ? ""
            : "host exposes " + std::to_string(hw) +
                  " hardware thread(s); a thread pool cannot beat physics";
    const bool passParallel = speedup4 > 1.5;
    const bool passCache = cacheSpeedup >= 10.0;
    std::cout << "4-thread speedup: " << speedup4;
    if (!parallelMeasurable)
        std::cout << " (SKIPPED: " << skipReason << ")";
    else
        std::cout << (passParallel ? " (PASS >1.5x)"
                                   : " (FAIL: wanted >1.5x)");
    std::cout << "\ncache-hit rerun speedup: " << cacheSpeedup
              << (passCache ? " (PASS >=10x)" : " (FAIL: wanted >=10x)")
              << "\n";

    std::ofstream os(jsonPath);
    if (!os) {
        std::cerr << "cannot write " << jsonPath << "\n";
        return 1;
    }
    pd::engine::JsonWriter w(os);
    w.beginObject();
    w.field("schema", "pd-bench-engine-v1");
    w.key("batch").beginArray();
    for (const auto& s : specs) w.value(s.benchmark);
    w.endArray();
    w.key("configs").beginArray();
    for (const auto& cfg : configs) {
        const double jobs = static_cast<double>(specs.size());
        w.beginObject();
        w.field("threads", cfg.threads);
        w.field("cold_ms", cfg.coldMs);
        w.field("warm_ms", cfg.warmMs);
        w.field("jobs_per_sec_cold", 1e3 * jobs / cfg.coldMs);
        w.field("jobs_per_sec_warm", 1e3 * jobs / cfg.warmMs);
        w.field("warm_cache_hits", cfg.warmHits);
        w.field("speedup_vs_1_thread", configs[0].coldMs / cfg.coldMs);
        w.field("warm_speedup", cfg.coldMs / cfg.warmMs);
        w.endObject();
    }
    w.endArray();
    w.key("summary").beginObject();
    // "cores" duplicates "hardware_concurrency" deliberately: the
    // latter has been the trajectory key since PR 1, the former is the
    // stable name downstream tooling keys on; both always come from the
    // same runtime detection.
    w.field("hardware_concurrency", static_cast<std::uint64_t>(hw));
    w.field("cores", static_cast<std::uint64_t>(hw));
    w.field("speedup_4_threads", speedup4);
    w.field("cache_speedup", cacheSpeedup);
    if (parallelMeasurable)
        w.field("pass_parallel", passParallel);
    else
        w.field("pass_parallel", "skipped");
    if (!skipReason.empty()) w.field("skip_reason", skipReason);
    w.field("pass_cache", passCache);
    w.endObject();
    w.endObject();
    std::cout << "wrote " << jsonPath << "\n";

    return (passParallel || !parallelMeasurable) && passCache ? 0 : 1;
}
