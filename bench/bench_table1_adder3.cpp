// Table 1, 12-bit three-input adder row: A+B+C 2058.0µm² 1.09ns,
// RCA(RCA(A,B),C) 2426.1µm² 1.11ns, Progressive Decomposition 1772.8µm²
// 0.75ns, CSA+Adder 1646.8µm² 0.70ns — the row where Boolean division
// matters and the paper's ~50% delay win appears (§6).
#include <benchmark/benchmark.h>

#include <iostream>

#include "circuits/adder.hpp"
#include "core/decomposer.hpp"
#include "eval/report.hpp"

namespace {

void BM_DecomposeAdder3(benchmark::State& state) {
    const auto bench =
        pd::circuits::makeAdder3(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        pd::anf::VarTable vt;
        const auto outs = bench.anf(vt);
        const auto d = pd::core::decompose(vt, outs, bench.outputNames);
        benchmark::DoNotOptimize(d.blocks.size());
    }
}
// Width 12 (the paper's) is excluded: its flat Reed-Muller form needs
// ~20M monomials and exhausts memory (the substitution DESIGN.md records).
BENCHMARK(BM_DecomposeAdder3)
    ->Arg(6)
    ->Arg(9)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    std::cout << pd::eval::formatReport(pd::eval::rowAdder3()) << '\n';
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
