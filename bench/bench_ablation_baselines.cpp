// Ablation: how strong can the *algebraic* baseline get before PD's
// Boolean-ring restructuring is needed? The paper (§2) argues kernel
// extraction — the best algebraic flow — fails on XOR-dominated
// arithmetic. Here the same SOP description runs through
//   flat two-level → quick-factor → full kernel extraction (Brayton),
// and then Progressive Decomposition, all mapped by the same flow.
// Expected shape: the algebraic ladder improves control-dominated logic
// (LZD) somewhat but never reaches the hierarchical PD/Oklobdzija QoR,
// and on the majority function (pure symmetric/XOR structure) algebraic
// factoring barely moves while PD collapses it via hidden counters.
#include <benchmark/benchmark.h>

#include <iostream>

#include "circuits/lzd.hpp"
#include "circuits/majority.hpp"
#include "eval/report.hpp"
#include "synth/kernels.hpp"

namespace {

using pd::circuits::Benchmark;

/// Runs one benchmark's SOP through all three algebraic levels plus PD.
pd::eval::BenchReport baselineLadder(const Benchmark& bench,
                                     const std::string& title) {
    pd::eval::BenchReport rep;
    rep.title = title;
    pd::eval::Flow flow;

    {
        pd::anf::VarTable vt;
        const auto spec = bench.sop(vt);
        rep.rows.push_back(flow.runNetlist(
            "SOP flat (two-level)", pd::synth::synthSopFlat(spec, vt), bench,
            0, 0));
    }
    rep.rows.push_back(flow.runSopFactored("SOP quick-factor", bench, 0, 0));
    {
        pd::anf::VarTable vt;
        const auto spec = bench.sop(vt);
        rep.rows.push_back(flow.runNetlist(
            "SOP kernel extraction [2]",
            pd::synth::synthSopKernels(spec, vt), bench, 0, 0));
    }
    if (bench.anf)
        rep.rows.push_back(
            flow.runPd("Progressive Decomposition", bench, 0, 0));
    return rep;
}

void BM_KernelExtractLzd(benchmark::State& state) {
    const auto bench =
        pd::circuits::makeLzd(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        pd::anf::VarTable vt;
        const auto spec = bench.sop(vt);
        const auto nl = pd::synth::synthSopKernels(spec, vt);
        benchmark::DoNotOptimize(nl.numNets());
    }
}
BENCHMARK(BM_KernelExtractLzd)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    std::cout << pd::eval::formatReport(baselineLadder(
                     pd::circuits::makeLzd(16),
                     "16-bit LZD: algebraic ladder vs PD (paper §2)"))
              << '\n';
    std::cout << pd::eval::formatReport(baselineLadder(
                     pd::circuits::makeMajority(9),
                     "9-bit Majority: algebraic ladder vs PD (paper §2)"))
              << '\n';
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
