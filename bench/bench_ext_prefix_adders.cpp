// Extension experiment: the carry-lookahead family behind the paper's
// "DesignWare" row. All classic prefix networks plus the ripple baseline
// and the PD output are pushed through the same flow at 16 and 32 bits,
// mapping the depth/area/wiring trade-off space around Table 1's adder
// row (PD ≈ direct synthesis; lookahead faster).
#include <benchmark/benchmark.h>

#include <iostream>

#include "circuits/adder.hpp"
#include "circuits/manual.hpp"
#include "circuits/prefix.hpp"
#include "eval/report.hpp"

namespace {

pd::eval::BenchReport adderFamilyReport(int n, bool withPd) {
    pd::eval::BenchReport rep;
    rep.title = std::to_string(n) + "-bit Adder family (extension around "
                "Table 1, row 6)";
    pd::eval::Flow flow;
    const auto bench = pd::circuits::makeAdder(n);
    rep.rows.push_back(flow.runNetlist("Ripple Carry Adder",
                                       pd::circuits::rcaAdder(n), bench, 0, 0));
    if (withPd && bench.anf)
        rep.rows.push_back(flow.runPd("Progressive Decomposition", bench, 0, 0));
    rep.rows.push_back(flow.runNetlist(
        "Sklansky (DesignWare proxy)", pd::circuits::claAdder(n), bench, 0, 0));
    rep.rows.push_back(flow.runNetlist(
        "Kogge-Stone", pd::circuits::koggeStoneAdder(n), bench, 0, 0));
    rep.rows.push_back(flow.runNetlist(
        "Brent-Kung", pd::circuits::brentKungAdder(n), bench, 0, 0));
    rep.rows.push_back(flow.runNetlist(
        "Han-Carlson", pd::circuits::hanCarlsonAdder(n), bench, 0, 0));
    pd::eval::satCrossCheck(rep);
    return rep;
}

void BM_BuildPrefixAdder(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        const auto nl = pd::circuits::koggeStoneAdder(n);
        benchmark::DoNotOptimize(nl.numNets());
    }
}
BENCHMARK(BM_BuildPrefixAdder)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
    std::cout << pd::eval::formatReport(adderFamilyReport(16, true)) << '\n';
    // 32 bits: the flat Reed-Muller form of the 2-operand adder is ~2^32
    // terms — PD is skipped (same wall as the paper's 32-bit LZD).
    std::cout << pd::eval::formatReport(adderFamilyReport(32, false)) << '\n';
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
