// Fig. 1 vs Fig. 2: the interconnect argument, quantified.
//
// The paper motivates hierarchy by contrasting the flat 16-bit LZD
// (enormous pin count, every input feeding many position blocks) with
// Oklobdzija's nibble-block design. This bench prints interconnect pins,
// fan-out, and logic levels for the flat implementation, the expert
// design, and the Progressive Decomposition output — the PD result must
// land on the hierarchical side of the gap.
#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "circuits/lzd.hpp"
#include "circuits/manual.hpp"
#include "core/decomposer.hpp"
#include "netlist/stats.hpp"
#include "synth/hier_synth.hpp"

namespace {

void printRow(const std::string& name, const pd::netlist::Netlist& nl) {
    const auto s = pd::netlist::computeStats(nl);
    std::cout << std::left << std::setw(34) << name << std::right
              << std::setw(8) << s.numGates << std::setw(14)
              << s.interconnect << std::setw(12) << s.maxInputFanout
              << std::setw(12) << s.maxFanout << std::setw(9) << s.levels
              << '\n';
}

void BM_StatsFlatLzd(benchmark::State& state) {
    for (auto _ : state) {
        const auto nl = pd::circuits::flatLzd(16);
        benchmark::DoNotOptimize(pd::netlist::computeStats(nl).interconnect);
    }
}
BENCHMARK(BM_StatsFlatLzd)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    std::cout << "== Fig. 1 vs Fig. 2: 16-bit LZD interconnect/fan-in ==\n";
    std::cout << std::left << std::setw(34) << "implementation" << std::right
              << std::setw(8) << "gates" << std::setw(14) << "interconnect"
              << std::setw(12) << "in-fanout" << std::setw(12) << "max-fo"
              << std::setw(9) << "levels" << '\n';
    std::cout << std::string(89, '-') << '\n';

    printRow("flat (Fig. 1 description)", pd::circuits::flatLzd(16));
    printRow("Oklobdzija [8] (Fig. 2)", pd::circuits::oklobdzijaLzd(16));

    const auto bench = pd::circuits::makeLzd(16);
    pd::anf::VarTable vt;
    const auto outs = bench.anf(vt);
    const auto d = pd::core::decompose(vt, outs, bench.outputNames);
    printRow("Progressive Decomposition", pd::synth::synthDecomposition(d, vt));

    std::cout << "\nSeries over width (flat vs hierarchical interconnect):\n";
    std::cout << std::left << std::setw(8) << "width" << std::right
              << std::setw(14) << "flat" << std::setw(14) << "hierarchical"
              << '\n';
    for (const int n : {4, 8, 16, 32}) {
        const auto flat =
            pd::netlist::computeStats(pd::circuits::flatLzd(n));
        const auto hier =
            pd::netlist::computeStats(pd::circuits::oklobdzijaLzd(n));
        std::cout << std::left << std::setw(8) << n << std::right
                  << std::setw(14) << flat.interconnect << std::setw(14)
                  << hier.interconnect << '\n';
    }
    std::cout << '\n';

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
