// Fig. 4 / Theorem 1: a circuit with an effective online algorithm has a
// hierarchical (conditional/carry-select style) implementation.
//
// The figure's example is addition: the online algorithm carries one bit
// of state, so k-bit groups expose exactly one bit of information to the
// next group and the conditioned values (f, g) = (sum if cin=0, sum if
// cin=1) are the leader expressions. This bench builds that construction
// explicitly (a carry-select hierarchy), verifies it, and compares its
// depth against the flat ripple description — and checks Progressive
// Decomposition's first-level groups match the construction's blocks.
#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "circuits/adder.hpp"
#include "circuits/manual.hpp"
#include "core/decomposer.hpp"
#include "netlist/builder.hpp"
#include "netlist/stats.hpp"
#include "sim/equivalence.hpp"
#include "synth/celllib.hpp"
#include "synth/mapper.hpp"
#include "synth/opt.hpp"
#include "synth/sta.hpp"

namespace {

using pd::netlist::Builder;
using pd::netlist::Netlist;
using pd::netlist::NetId;

/// Fig. 4's construction for the adder: 2-bit groups computing their sum
/// under both carry assumptions (the f/g leader expressions), selected by
/// the actual carry — a carry-select adder.
Netlist onlineHierarchyAdder(int n, int groupBits) {
    Netlist nl;
    Builder b(nl);
    std::vector<NetId> a;
    std::vector<NetId> y;
    for (int i = 0; i < n; ++i) a.push_back(b.input("a" + std::to_string(i)));
    for (int i = 0; i < n; ++i) y.push_back(b.input("b" + std::to_string(i)));

    std::vector<NetId> s(static_cast<std::size_t>(n) + 1);
    NetId carry = b.constant(false);
    for (int base = 0; base < n; base += groupBits) {
        const int hi = std::min(n, base + groupBits);
        // Leader expressions: per-group sums under cin = 0 and cin = 1.
        std::vector<NetId> sum0;
        std::vector<NetId> sum1;
        NetId c0 = b.constant(false);
        NetId c1 = b.constant(true);
        for (int i = base; i < hi; ++i) {
            const auto f0 = b.fullAdder(a[static_cast<std::size_t>(i)],
                                        y[static_cast<std::size_t>(i)], c0);
            const auto f1 = b.fullAdder(a[static_cast<std::size_t>(i)],
                                        y[static_cast<std::size_t>(i)], c1);
            sum0.push_back(f0.sum);
            sum1.push_back(f1.sum);
            c0 = f0.carry;
            c1 = f1.carry;
        }
        // Second level: select by the one bit of information the previous
        // group exposes (Theorem 1's c = 1 case).
        for (int i = base; i < hi; ++i) {
            s[static_cast<std::size_t>(i)] =
                b.mkMux(carry, sum0[static_cast<std::size_t>(i - base)],
                        sum1[static_cast<std::size_t>(i - base)]);
        }
        carry = b.mkMux(carry, c0, c1);
    }
    s[static_cast<std::size_t>(n)] = carry;
    for (int i = 0; i <= n; ++i)
        nl.markOutput("s" + std::to_string(i), s[static_cast<std::size_t>(i)]);
    return nl;
}

void BM_BuildOnlineHierarchy(benchmark::State& state) {
    for (auto _ : state) {
        const auto nl =
            onlineHierarchyAdder(static_cast<int>(state.range(0)), 4);
        benchmark::DoNotOptimize(nl.numNets());
    }
}
BENCHMARK(BM_BuildOnlineHierarchy)->Arg(16)->Arg(32)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    using namespace pd;
    std::cout << "== Fig. 4: online-algorithm construction (16-bit adder) ==\n";
    const auto bench = circuits::makeAdder(16);
    const auto lib = synth::CellLibrary::umc130();

    std::cout << std::left << std::setw(36) << "implementation" << std::right
              << std::setw(9) << "levels" << std::setw(12) << "delay ns"
              << std::setw(12) << "area um^2" << std::setw(10) << "verified"
              << '\n'
              << std::string(79, '-') << '\n';
    const auto report = [&](const std::string& name,
                            const netlist::Netlist& raw) {
        const auto nl = synth::techMap(synth::optimize(raw), lib);
        const auto st = netlist::computeStats(nl);
        const auto q = synth::qor(nl, lib);
        const auto eq = sim::checkAgainstReference(nl, bench.ports,
                                                   bench.outputNames,
                                                   bench.reference);
        std::cout << std::left << std::setw(36) << name << std::right
                  << std::setw(9) << st.levels << std::setw(12) << std::fixed
                  << std::setprecision(3) << q.delay << std::setw(12)
                  << std::setprecision(1) << q.area << std::setw(10)
                  << (eq.equivalent ? "yes" : "NO") << '\n';
    };
    report("flat ripple (online, serialized)", circuits::rcaAdder(16));
    report("Fig. 4 hierarchy, 2-bit groups", onlineHierarchyAdder(16, 2));
    report("Fig. 4 hierarchy, 4-bit groups", onlineHierarchyAdder(16, 4));
    report("Fig. 4 hierarchy, 8-bit groups", onlineHierarchyAdder(16, 8));
    std::cout << '\n';

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
