// SAT verification microbench: CDCL vs the naive DPLL oracle on the
// mul4 verify obligation — the canonical miter between the decomposed
// raw netlist (synthDecomposition) and its optimized+mapped form,
// exactly the CNF the engine's --verify-threads mode refutes.
//
// What is measured, precisely
// ---------------------------
// Both engines completely refute the mul4 miter, and the gated ratio is
// propagation-phase THROUGHPUT: implications derived per second of wall
// time spent inside the propagation routine (SolverStats /
// DpllStats::propagationNanos — propagate() for CDCL, propagateAll()
// for DPLL). Decision, conflict-analysis, and backtracking time is
// excluded on both sides; each engine is charged exactly for how fast
// it derives implications from the same clauses.
//
// The refutation workloads are each engine's natural complete proof:
//
//  * DPLL refutes the miter with its native solve. This is the oracle's
//    BEST case, not a strawman: mul4 has 8 primary inputs, so
//    chronological input-first enumeration finishes in ~74k elementary
//    steps, and the miter CNF is emitted in topological order, so each
//    scan pass of propagateAll() resolves an entire gate cascade.
//    What the naive scan cannot hide is per-implication cost: every
//    fixpoint pass touches all ~3.5k clauses to find the few that are
//    unit.
//  * CDCL refutes the miter as a warm 256-cofactor sweep: one solver,
//    solveUnder() once per input vector (a complete enumeration of the
//    8-bit input space, reusing learned clauses across cofactors — the
//    workload the assumptions interface exists for). Two-watched-literal
//    propagation touches only clauses indexed by the newly falsified
//    literal, plus the binary-clause CSR slab, so its per-implication
//    cost stays flat. The canonical native solve() proof is also run
//    and reported (cdcl_solve_mul4_ms is a tracked metric); the sweep
//    is used for the throughput ratio because it propagates on warm
//    data structures, which is how the engine's verify path uses the
//    solver shard-wide.
//
// CDCL and DPLL reps are interleaved and each side takes its best rep,
// so a machine-load spike cannot bias the ratio either way.
//
// Results go to BENCH_sat.json ("pd-bench-sat-v1"):
//
//   {
//     "schema": "pd-bench-sat-v1",
//     "metrics": {                // tracked by scripts/check_hotpath.py
//       "cdcl_solve_mul4_ms": f,  // full UNSAT proof, canonical searcher
//       "miter_build_mul4_ms": f
//     },
//     "reference": {              // context, not gated
//       "dpll_mul4_ms": f,        // DPLL full native proof, end to end
//       "cdcl_props_per_sec": f,  // warm sweep, propagation phase
//       "dpll_props_per_sec": f,  // native proof, propagation phase
//       "sweep_props": u, "sweep_conflicts": u, "reps": u
//     },
//     "speedups": {               // measured within one run — the
//       "cdcl_vs_dpll_props_per_sec": f   // machine-independent gate
//     },
//     "miter": {"vars": u, "clauses": u, "cdcl_conflicts": u}
//   }
//
// The committed baseline floor (via check_hotpath.py) keeps the ratio
// from silently collapsing, e.g. by an accidental scan-all-clauses
// regression in the watch lists.
#include <chrono>
#include <fstream>
#include <iostream>

#include "circuits/registry.hpp"
#include "core/decomposer.hpp"
#include "engine/report_json.hpp"
#include "sat/dimacs.hpp"
#include "sat/dpll.hpp"
#include "sat/miter.hpp"
#include "sat/solver.hpp"
#include "synth/celllib.hpp"
#include "synth/hier_synth.hpp"
#include "synth/mapper.hpp"
#include "synth/opt.hpp"

namespace {

double msSince(const std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

}  // namespace

int main(int argc, char** argv) {
    const std::string jsonPath = argc > 1 ? argv[1] : "BENCH_sat.json";

    // The engine's mul4 verify obligation.
    const auto bench = pd::circuits::makeNamedBenchmark("mul4");
    if (!bench || !bench->anf) {
        std::cerr << "mul4 benchmark unavailable\n";
        return 1;
    }
    pd::anf::VarTable vt;
    const auto outputs = bench->anf(vt);
    const auto d = pd::core::decompose(vt, outputs, bench->outputNames, {});
    const auto raw = pd::synth::synthDecomposition(d, vt);
    const auto lib = pd::synth::CellLibrary::umc130();
    const auto mapped = pd::synth::techMap(pd::synth::optimize(raw), lib);

    const auto buildStart = std::chrono::steady_clock::now();
    const auto miter = pd::sat::buildMiterCnf(raw, mapped);
    const double miterBuildMs = msSince(buildStart);
    if (miter.trivialUnsat) {
        std::cerr << "mul4 miter trivially unsat — nothing to measure\n";
        return 1;
    }
    const std::size_t numInputs = miter.inputVars.size();
    if (numInputs == 0 || numInputs > 20) {
        std::cerr << "unexpected miter input count " << numInputs << "\n";
        return 1;
    }

    // CDCL: full native refutation, canonical searcher, best of 3.
    // cdcl_solve_mul4_ms is the tracked end-to-end metric.
    double cdclMs = 1e300;
    std::uint64_t cdclConflicts = 0;
    for (int rep = 0; rep < 3; ++rep) {
        pd::sat::Solver solver;
        pd::sat::loadProblem(solver, miter.problem);
        const auto start = std::chrono::steady_clock::now();
        const auto result = solver.solve();
        const double ms = msSince(start);
        if (result != pd::sat::Result::kUnsat) {
            std::cerr << "mul4 miter did not refute (result "
                      << static_cast<int>(result) << ")\n";
            return 1;
        }
        if (ms < cdclMs) {
            cdclMs = ms;
            cdclConflicts = solver.stats().conflicts;
        }
    }

    // Propagation-phase throughput, interleaved reps (see file header).
    constexpr int kReps = 5;
    constexpr std::uint64_t kDpllBudget = 4'000'000;  // safety valve only
    double cdclPropsPerSec = 0.0;
    double dpllPropsPerSec = 0.0;
    double dpllMs = 1e300;
    std::uint64_t sweepProps = 0;
    std::uint64_t sweepConflicts = 0;
    for (int rep = 0; rep < kReps; ++rep) {
        // CDCL rep: warm cofactor sweep over all 2^numInputs vectors.
        {
            pd::sat::Solver solver;
            pd::sat::loadProblem(solver, miter.problem);
            std::vector<pd::sat::Lit> assumps(numInputs, pd::sat::Lit());
            for (std::uint64_t vec = 0; vec < (1ull << numInputs); ++vec) {
                for (std::size_t k = 0; k < numInputs; ++k)
                    assumps[k] = pd::sat::Lit(miter.inputVars[k],
                                              /*negated=*/!((vec >> k) & 1));
                if (solver.solveUnder(assumps) != pd::sat::Result::kUnsat) {
                    std::cerr << "cofactor " << vec << " did not refute\n";
                    return 1;
                }
            }
            const auto& st = solver.stats();
            if (st.propagationNanos == 0) {
                std::cerr << "no propagation time recorded\n";
                return 1;
            }
            const double rate = static_cast<double>(st.propagations) /
                                (static_cast<double>(st.propagationNanos) /
                                 1e9);
            if (rate > cdclPropsPerSec) {
                cdclPropsPerSec = rate;
                sweepProps = st.propagations;
                sweepConflicts = st.conflicts;
            }
        }
        // DPLL rep: full native proof.
        {
            pd::sat::DpllSolver oracle;
            for (std::size_t v = 0; v < miter.problem.numVars; ++v)
                (void)oracle.newVar();
            for (const auto& clause : miter.problem.clauses)
                oracle.addClause(std::vector<pd::sat::Lit>(clause));
            const auto start = std::chrono::steady_clock::now();
            const auto result = oracle.solve(kDpllBudget);
            const double ms = msSince(start);
            if (result != pd::sat::Result::kUnsat) {
                std::cerr << "DPLL did not refute the miter (result "
                          << static_cast<int>(result) << ")\n";
                return 1;
            }
            const auto& st = oracle.stats();
            if (st.propagationNanos == 0) {
                std::cerr << "no DPLL propagation time recorded\n";
                return 1;
            }
            const double rate = static_cast<double>(st.propagations) /
                                (static_cast<double>(st.propagationNanos) /
                                 1e9);
            if (rate > dpllPropsPerSec) dpllPropsPerSec = rate;
            if (ms < dpllMs) dpllMs = ms;
        }
    }

    const double speedup = cdclPropsPerSec / dpllPropsPerSec;

    std::cout << "mul4 miter: " << miter.problem.numVars << " vars, "
              << miter.problem.clauses.size() << " clauses (built in "
              << miterBuildMs << " ms)\n"
              << "cdcl native: UNSAT in " << cdclMs << " ms, "
              << cdclConflicts << " conflicts\n"
              << "cdcl sweep: " << sweepProps << " props, "
              << sweepConflicts << " conflicts, "
              << cdclPropsPerSec / 1e6 << " Mprops/s (propagation phase)\n"
              << "dpll native: UNSAT in " << dpllMs << " ms, "
              << dpllPropsPerSec / 1e6 << " Mprops/s (propagation phase)\n"
              << "cdcl/dpll propagation throughput: " << speedup << "x\n";

    std::ofstream os(jsonPath);
    if (!os) {
        std::cerr << "cannot write " << jsonPath << "\n";
        return 1;
    }
    pd::engine::JsonWriter w(os);
    w.beginObject();
    w.field("schema", "pd-bench-sat-v1");
    w.key("metrics").beginObject();
    w.field("cdcl_solve_mul4_ms", cdclMs);
    w.field("miter_build_mul4_ms", miterBuildMs);
    w.endObject();
    w.key("reference").beginObject();
    w.field("dpll_mul4_ms", dpllMs);
    w.field("cdcl_props_per_sec", cdclPropsPerSec);
    w.field("dpll_props_per_sec", dpllPropsPerSec);
    w.field("sweep_props", sweepProps);
    w.field("sweep_conflicts", sweepConflicts);
    w.field("reps", static_cast<std::uint64_t>(kReps));
    w.endObject();
    w.key("speedups").beginObject();
    w.field("cdcl_vs_dpll_props_per_sec", speedup);
    w.endObject();
    w.key("miter").beginObject();
    w.field("vars", static_cast<std::uint64_t>(miter.problem.numVars));
    w.field("clauses",
            static_cast<std::uint64_t>(miter.problem.clauses.size()));
    w.field("cdcl_conflicts", cdclConflicts);
    w.endObject();
    w.endObject();
    std::cout << "wrote " << jsonPath << "\n";
    return 0;
}
