// Table 1, 16-bit adder row: RCA 1866.2µm² 0.56ns, Progressive
// Decomposition 1836.9µm² 0.54ns, DesignWare 1375.5µm² 0.58ns — the
// "algebraic factorisation is already enough" row (§6).
#include <benchmark/benchmark.h>

#include <iostream>

#include "circuits/adder.hpp"
#include "core/decomposer.hpp"
#include "eval/report.hpp"

namespace {

void BM_DecomposeAdder(benchmark::State& state) {
    const auto bench =
        pd::circuits::makeAdder(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        pd::anf::VarTable vt;
        const auto outs = bench.anf(vt);
        const auto d = pd::core::decompose(vt, outs, bench.outputNames);
        benchmark::DoNotOptimize(d.blocks.size());
    }
}
BENCHMARK(BM_DecomposeAdder)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    std::cout << pd::eval::formatReport(pd::eval::rowAdder16()) << '\n';
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
