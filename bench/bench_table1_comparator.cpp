// Table 1, comparator row: progressive comparator 514.9µm² 0.40ns,
// Progressive Decomposition 466.6µm² 0.33ns, subtracter carry-out
// 577.2µm² 0.40ns. The paper runs 15 bits; the flat Reed-Muller form has
// 3^n − 1 terms, so this reproduction defaults to 12 bits (531k terms) —
// the substitution is recorded in DESIGN.md/EXPERIMENTS.md and the
// architectural conclusion (PD ≈ carry-lookahead sign computation, ~20%
// faster than the mux chain) is width-independent.
#include <benchmark/benchmark.h>

#include <iostream>

#include "circuits/comparator.hpp"
#include "core/decomposer.hpp"
#include "eval/report.hpp"

namespace {

void BM_DecomposeComparator(benchmark::State& state) {
    const auto bench =
        pd::circuits::makeComparator(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        pd::anf::VarTable vt;
        const auto outs = bench.anf(vt);
        const auto d = pd::core::decompose(vt, outs, bench.outputNames);
        benchmark::DoNotOptimize(d.blocks.size());
    }
}
BENCHMARK(BM_DecomposeComparator)
    ->Arg(6)
    ->Arg(8)
    ->Arg(10)
    ->Arg(12)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    std::cout << pd::eval::formatReport(pd::eval::rowComparator(12)) << '\n';
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
