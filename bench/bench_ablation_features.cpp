// Ablation: how much each of the paper's optimizations contributes.
//
// Toggles §5.3 linear minimization, §5.4 size reduction, §5.5 identities,
// and the null-space merging of §5.2 (plus the stronger-than-paper
// complement null-spaces) on the circuits where each matters, reporting
// leader counts and mapped QoR per configuration.
#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "circuits/adder.hpp"
#include "circuits/lzd.hpp"
#include "circuits/majority.hpp"
#include "core/decomposer.hpp"
#include "eval/table1.hpp"

namespace {

struct Config {
    const char* name;
    pd::core::DecomposeOptions opt;
};

std::vector<Config> configs() {
    std::vector<Config> out;
    pd::core::DecomposeOptions full;
    out.push_back({"full (paper)", full});
    {
        auto o = full;
        o.useIdentities = false;
        o.useNullspaceMerging = false;
        out.push_back({"no identities/nullspaces", o});
    }
    {
        auto o = full;
        o.useLinearMinimize = false;
        out.push_back({"no linear minimization", o});
    }
    {
        auto o = full;
        o.useSizeReduction = false;
        out.push_back({"no size reduction", o});
    }
    {
        auto o = full;
        o.useLinearMinimize = false;
        o.useSizeReduction = false;
        o.useIdentities = false;
        o.useNullspaceMerging = false;
        out.push_back({"bare findBasis", o});
    }
    {
        auto o = full;
        o.complementNullspace = true;
        out.push_back({"+complement nullspaces", o});
    }
    return out;
}

void runCircuit(const std::string& title,
                const pd::circuits::Benchmark& bench) {
    std::cout << "-- " << title << " --\n";
    std::cout << std::left << std::setw(28) << "configuration" << std::right
              << std::setw(9) << "leaders" << std::setw(8) << "iters"
              << std::setw(12) << "area um^2" << std::setw(11) << "delay ns"
              << std::setw(10) << "verified" << '\n';
    for (const auto& cfg : configs()) {
        pd::eval::Flow flow;
        const auto row = flow.runPd(cfg.name, bench, 0, 0, cfg.opt);
        pd::anf::VarTable vt;
        const auto outs = bench.anf(vt);
        const auto d = pd::core::decompose(vt, outs, bench.outputNames,
                                           cfg.opt);
        std::cout << std::left << std::setw(28) << cfg.name << std::right
                  << std::setw(9) << d.totalBlockOutputs() << std::setw(8)
                  << d.iterations << std::setw(12) << std::fixed
                  << std::setprecision(1) << row.qor.area << std::setw(11)
                  << std::setprecision(3) << row.qor.delay << std::setw(10)
                  << (row.verified ? "yes" : "NO") << '\n';
    }
    std::cout << '\n';
}

void BM_FullVsBare(benchmark::State& state) {
    const auto bench = pd::circuits::makeMajority(11);
    pd::core::DecomposeOptions opt;
    if (state.range(0) == 0) {
        opt.useIdentities = false;
        opt.useNullspaceMerging = false;
        opt.useLinearMinimize = false;
        opt.useSizeReduction = false;
    }
    for (auto _ : state) {
        pd::anf::VarTable vt;
        const auto outs = bench.anf(vt);
        const auto d = pd::core::decompose(vt, outs, bench.outputNames, opt);
        benchmark::DoNotOptimize(d.totalBlockOutputs());
    }
}
BENCHMARK(BM_FullVsBare)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    std::cout << "== Ablation of the paper's optimizations ==\n\n";
    runCircuit("15-bit majority (identities matter)",
               pd::circuits::makeMajority(15));
    runCircuit("16-bit LZD (linear minimization matters)",
               pd::circuits::makeLzd(16));
    runCircuit("8-bit adder", pd::circuits::makeAdder(8));
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
