// Table 1, 15-bit majority row: Unoptimised (SOP) 2353.5µm² 0.79ns vs
// Progressive Decomposition 765.5µm² 0.58ns.
#include <benchmark/benchmark.h>

#include <iostream>

#include "circuits/majority.hpp"
#include "core/decomposer.hpp"
#include "eval/report.hpp"

namespace {

void BM_DecomposeMajority(benchmark::State& state) {
    const auto bench =
        pd::circuits::makeMajority(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        pd::anf::VarTable vt;
        const auto outs = bench.anf(vt);
        const auto d = pd::core::decompose(vt, outs, bench.outputNames);
        benchmark::DoNotOptimize(d.blocks.size());
    }
}
BENCHMARK(BM_DecomposeMajority)
    ->Arg(7)
    ->Arg(11)
    ->Arg(15)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    std::cout << pd::eval::formatReport(pd::eval::rowMajority15()) << '\n';
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
