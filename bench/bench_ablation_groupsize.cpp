// Ablation: group size k (the paper fixes k = 4 in §5.1 but notes other
// values are possible). Sweeps k and reports hierarchy shape and QoR.
#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "circuits/counter.hpp"
#include "circuits/lzd.hpp"
#include "circuits/majority.hpp"
#include "core/decomposer.hpp"
#include "eval/table1.hpp"

namespace {

void sweep(const std::string& title, const pd::circuits::Benchmark& bench) {
    std::cout << "-- " << title << " --\n";
    std::cout << std::left << std::setw(6) << "k" << std::right
              << std::setw(9) << "leaders" << std::setw(8) << "iters"
              << std::setw(9) << "blocks" << std::setw(12) << "area um^2"
              << std::setw(11) << "delay ns" << std::setw(10) << "verified"
              << '\n';
    for (std::size_t k = 2; k <= 6; ++k) {
        pd::core::DecomposeOptions opt;
        opt.k = k;
        pd::eval::Flow flow;
        const auto row = flow.runPd("k-sweep", bench, 0, 0, opt);
        pd::anf::VarTable vt;
        const auto outs = bench.anf(vt);
        const auto d =
            pd::core::decompose(vt, outs, bench.outputNames, opt);
        std::cout << std::left << std::setw(6) << k << std::right
                  << std::setw(9) << d.totalBlockOutputs() << std::setw(8)
                  << d.iterations << std::setw(9) << d.blocks.size()
                  << std::setw(12) << std::fixed << std::setprecision(1)
                  << row.qor.area << std::setw(11) << std::setprecision(3)
                  << row.qor.delay << std::setw(10)
                  << (row.verified ? "yes" : "NO") << '\n';
    }
    std::cout << '\n';
}

void BM_DecomposeByK(benchmark::State& state) {
    const auto bench = pd::circuits::makeLzd(16);
    pd::core::DecomposeOptions opt;
    opt.k = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        pd::anf::VarTable vt;
        const auto outs = bench.anf(vt);
        const auto d = pd::core::decompose(vt, outs, bench.outputNames, opt);
        benchmark::DoNotOptimize(d.blocks.size());
    }
}
BENCHMARK(BM_DecomposeByK)->DenseRange(2, 6)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    std::cout << "== Group-size (k) ablation; the paper uses k = 4 ==\n\n";
    sweep("16-bit LZD", pd::circuits::makeLzd(16));
    sweep("15-bit majority", pd::circuits::makeMajority(15));
    sweep("12-bit counter", pd::circuits::makeCounter(12));
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
