// Scaling study: the Reed-Muller representation wall (paper §6/§7).
//
// The paper reports that the 32-bit LZD cannot be processed because its
// Reed-Muller form blows up, while the 32-bit LOD stays small. This bench
// prints the measured growth laws (LOD linear, LZD/comparator/adder-carry
// exponential: 2^n, 3^n, 2^n) and times decomposition across widths — the
// quantitative version of the paper's closing remark that a compact ring
// representation is the main open problem.
#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "circuits/adder.hpp"
#include "circuits/comparator.hpp"
#include "circuits/lzd.hpp"
#include "core/decomposer.hpp"

namespace {

std::size_t termsOf(const pd::circuits::Benchmark& bench) {
    if (!bench.anf) return 0;
    pd::anf::VarTable vt;
    std::size_t total = 0;
    for (const auto& e : bench.anf(vt)) total += e.termCount();
    return total;
}

void BM_DecomposeLodWide(benchmark::State& state) {
    const auto bench =
        pd::circuits::makeLod(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        pd::anf::VarTable vt;
        const auto outs = bench.anf(vt);
        const auto d = pd::core::decompose(vt, outs, bench.outputNames);
        benchmark::DoNotOptimize(d.blocks.size());
    }
}
BENCHMARK(BM_DecomposeLodWide)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_DecomposeComparatorWide(benchmark::State& state) {
    const auto bench =
        pd::circuits::makeComparator(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        pd::anf::VarTable vt;
        const auto outs = bench.anf(vt);
        const auto d = pd::core::decompose(vt, outs, bench.outputNames);
        benchmark::DoNotOptimize(d.blocks.size());
    }
}
BENCHMARK(BM_DecomposeComparatorWide)
    ->DenseRange(4, 12, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    using pd::circuits::makeAdder;
    using pd::circuits::makeComparator;
    using pd::circuits::makeLod;
    using pd::circuits::makeLzd;

    std::cout << "== Reed-Muller size growth (terms in the flat form) ==\n";
    std::cout << std::left << std::setw(7) << "width" << std::right
              << std::setw(12) << "LOD" << std::setw(12) << "LZD"
              << std::setw(14) << "comparator" << std::setw(12) << "adder"
              << '\n'
              << std::string(57, '-') << '\n';
    for (const int n : {4, 8, 16, 32}) {
        std::cout << std::left << std::setw(7) << n << std::right
                  << std::setw(12) << termsOf(makeLod(n)) << std::setw(12)
                  << termsOf(makeLzd(n)) << std::setw(14)
                  << (n <= 13 ? termsOf(makeComparator(n)) : 0)
                  << std::setw(12)
                  << (n <= 16 ? termsOf(makeAdder(n)) : 0) << '\n';
    }
    std::cout << "(0 = width refused: 3^n / 2^n blow-up — the paper's §7 "
                 "wall; LOD stays linear, hence the 32-bit LOD row)\n\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
