// Fig. 6: the execution trace of Progressive Decomposition on the 7-input
// majority function, printed in the paper's terms — the 4:3 counter basis
// {s1, s2, s3, s4} with s3 reduced to s1·s2, the annihilators s1·s4 =
// s2·s4 = 0, the 3:2 counter on the remaining bits, and the carry-out
// blocks of the final comparison.
#include <benchmark/benchmark.h>

#include <iostream>

#include "anf/printer.hpp"
#include "circuits/majority.hpp"
#include "core/decomposer.hpp"

namespace {

void BM_TraceMajority7(benchmark::State& state) {
    const auto bench = pd::circuits::makeMajority(7);
    for (auto _ : state) {
        pd::anf::VarTable vt;
        const auto outs = bench.anf(vt);
        const auto d = pd::core::decompose(vt, outs, bench.outputNames);
        benchmark::DoNotOptimize(d.trace.size());
    }
}
BENCHMARK(BM_TraceMajority7)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    using namespace pd;
    const auto bench = circuits::makeMajority(7);
    anf::VarTable vt;
    const auto outs = bench.anf(vt);

    std::cout << "== Fig. 6: progressive decomposition of the 7-bit "
                 "majority function ==\n";
    std::cout << "input: XOR of all 4-subsets of {a0..a6} ("
              << outs[0].termCount() << " monomials)\n\n";

    const auto d = core::decompose(vt, outs, bench.outputNames);
    for (const auto& tr : d.trace) {
        std::cout << "findBasis(group " << tr.group << "): " << tr.rawPairCount
                  << " pairs -> " << tr.mergedPairCount << " after merging\n";
        for (const auto& s : tr.basis) std::cout << "    " << s << '\n';
        for (const auto& s : tr.reductions)
            std::cout << "    reduce: " << s
                      << "    (basis shrinks; cf. s3 = s1*s2)\n";
        for (const auto& s : tr.identities)
            std::cout << "    identity: " << s << '\n';
    }
    std::cout << "\nresidual output: "
              << anf::toString(d.residualOutputs[0], vt) << '\n';
    std::cout << "equivalence: "
              << (d.expandedOutputs(vt)[0] == outs[0] ? "OK" : "FAILED")
              << "\n\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
