#!/usr/bin/env python3
"""CI perf smoke gate for the indexed-ANF hot path, the probe sweep,
and the SAT verification core.

Usage: check_hotpath.py BASELINE.json CURRENT.json [tolerance]

Accepts any committed bench document — the kernel baseline
(pd-bench-hotpath-v1), the probe-sweep baseline (pd-bench-probe-v1), or
the SAT-core baseline (pd-bench-sat-v1, where the "speedups" floor
guards the CDCL-vs-DPLL propagation-throughput ratio); baseline and
current must carry the same schema. Two complementary
checks:

  1. "metrics" (absolute units): every entry must stay within
     `tolerance`x of the baseline (default 2.0, or env PD_HOTPATH_TOL).
     Catches a phase falling off a cliff, but compares across machines,
     so CI passes a larger tolerance to absorb runner-speed variance.
  2. "speedups" (ratios measured WITHIN the current run — indexed vs
     reference kernels, incremental vs reference probe sweep): each must
     stay above baseline_speedup / tolerance. These are
     machine-independent, so they catch the scary regressions — an
     accidental reference-path fallback, a span pool that stopped
     hitting — even on a runner whose absolute speed differs wildly
     from the baseline machine's.
"""
import json
import os
import sys

SCHEMAS = ("pd-bench-hotpath-v1", "pd-bench-probe-v1", "pd-bench-sat-v1")


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    baseline = json.load(open(sys.argv[1]))
    current = json.load(open(sys.argv[2]))
    tol = float(
        sys.argv[3] if len(sys.argv) > 3 else os.environ.get(
            "PD_HOTPATH_TOL", "2.0"))

    for doc, name in ((baseline, sys.argv[1]), (current, sys.argv[2])):
        if doc.get("schema") not in SCHEMAS:
            print(f"{name}: unexpected schema {doc.get('schema')!r}")
            return 1
    if baseline.get("schema") != current.get("schema"):
        print(f"schema mismatch: baseline {baseline.get('schema')!r} vs "
              f"current {current.get('schema')!r}")
        return 1

    failed = False
    for key, base in sorted(baseline["metrics"].items()):
        cur = current["metrics"].get(key)
        if cur is None:
            print(f"FAIL metric {key}: missing from current run")
            failed = True
            continue
        ratio = cur / base if base > 0 else float("inf")
        verdict = "FAIL" if ratio > tol else "ok"
        print(f"{verdict:4s} metric  {key}: baseline {base:.3f}, current "
              f"{cur:.3f} ({ratio:.2f}x, tolerance {tol:.2f}x)")
        failed |= ratio > tol

    for key, base in sorted(baseline.get("speedups", {}).items()):
        cur = current.get("speedups", {}).get(key)
        if cur is None:
            print(f"FAIL speedup {key}: missing from current run")
            failed = True
            continue
        floor = base / tol
        verdict = "FAIL" if cur < floor else "ok"
        print(f"{verdict:4s} speedup {key}: baseline {base:.2f}x, current "
              f"{cur:.2f}x (floor {floor:.2f}x)")
        failed |= cur < floor
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
