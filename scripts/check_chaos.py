#!/usr/bin/env python3
"""CI chaos gate: run `pd_cli batch` under a matrix of deterministic
fault plans and assert the fleet degrades gracefully instead of dying.

Usage: check_chaos.py --cli ./build/pd_cli [--workdir DIR]
                      [--transport pipe|socket] [--soak N] [--seed S]
                      [--keep]

With --transport socket the whole matrix (and the baseline it is
compared against) runs under --shard-transport socket, proving the
degradation contract holds when frames travel a localhost connection
instead of inherited pipes. Two socket-only liveness plans always run
regardless: a worker frozen mid-job must die at the heartbeat deadline
with its job retried on another worker, and a connection that never
establishes must book spawn-failure (not crash) accounting.

Every plan runs the same three-benchmark batch and is held to the
generic contract first:

  1. the coordinator process never dies on a signal — the exit code is
     always one of the documented batch codes (0 all ok, 2 partial,
     1 fatal);
  2. the JSON report is written, parses, names exactly the baseline's
     job set, and carries the `resilience` block;
  3. every job that succeeded is semantically identical to the
     fault-free baseline run (volatile fields — timing, cache
     provenance, shard placement — stripped first);
  4. if a cache store was flushed, `pd_cli cache-info` can read it
     (loaded or salvaged) without crashing.

On top of that each plan asserts its own blast radius: a targeted
worker crash fails only the targeted job, a spawn blip is absorbed
silently, a pool collapse falls back in-process with zero failures,
an ENOSPC flush is fatal but leaves the report intact, and so on.

With --soak N, N extra iterations arm pseudo-random seeded
probabilistic plans (deterministic per --seed) and enforce the generic
contract plus a fault-free warm rerun that must match the baseline —
the cache-soundness check that nothing a faulted run persisted can
poison a later one. Exits non-zero with a diagnostic on the first
violation.
"""
import argparse
import json
import os
import random
import shutil
import subprocess
import sys
import tempfile

BENCHES = ("majority7", "counter8", "adder8")
VOLATILE_JOB_FIELDS = ("timing", "cache", "shard", "shard_fallback")
RUN_TIMEOUT_S = 300

# Which --shard-transport every sharded run uses (set from --transport);
# plans that pass an explicit --shard-transport are left alone.
TRANSPORT = "pipe"

# Sites safe for randomized soaking: each either kills/starves a worker
# (retry/fallback territory) or tears an artifact (salvage territory).
# Hang sites are excluded — they only convert chaos time into wall time.
SOAK_SITES = (
    "shard.worker.crash",
    "shard.worker.spawn",
    "shard.wire.corrupt",
    "shard.wire.partial",
    "engine.job.fail",
    "persist.save.short_write",
)


def fail(plan, message, result=None):
    lines = [f"chaos gate FAILED [{plan}]: {message}"]
    if result is not None:
        lines.append(f"  exit code: {result.code}")
        tail = result.output.strip().splitlines()[-12:]
        if tail:
            lines.append("  output tail:")
            lines.extend(f"    {ln}" for ln in tail)
    sys.exit("\n".join(lines))


class RunResult:
    def __init__(self, code, report, report_path, output):
        self.code = code
        self.report = report
        self.report_path = report_path
        self.output = output


def run_batch(cli, workdir, tag, faults=None, env_extra=None, args=()):
    """One `pd_cli batch` run; returns exit code + parsed report."""
    report_path = os.path.join(workdir, f"{tag}.json")
    cmd = [cli, "batch", *BENCHES, "--json", report_path, *args]
    if "--shards" in args and "--shard-transport" not in args:
        cmd += ["--shard-transport", TRANSPORT]
    env = dict(os.environ)
    env.pop("PD_FAULTS", None)
    if faults:
        env["PD_FAULTS"] = faults
    for key, value in (env_extra or {}).items():
        env[key] = value
    try:
        proc = subprocess.run(cmd, env=env, timeout=RUN_TIMEOUT_S,
                              stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, text=True)
    except subprocess.TimeoutExpired:
        sys.exit(f"chaos gate FAILED [{tag}]: batch did not finish "
                 f"within {RUN_TIMEOUT_S}s: {' '.join(cmd)}")
    report = None
    if os.path.exists(report_path):
        try:
            with open(report_path) as f:
                report = json.load(f)
        except ValueError as e:
            sys.exit(f"chaos gate FAILED [{tag}]: report "
                     f"{report_path} is not valid JSON: {e}")
    return RunResult(proc.returncode, report, report_path, proc.stdout)


def cache_info_code(cli, store):
    proc = subprocess.run([cli, "cache-info", store], timeout=60,
                          stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    return proc.returncode


def semantic_jobs(report):
    jobs = {}
    for job in report["jobs"]:
        job = dict(job)
        for field in VOLATILE_JOB_FIELDS:
            job.pop(field, None)
        jobs[job["name"]] = job
    return jobs


def check_generic(plan, result, baseline, cli, store=None):
    """The contract every plan is held to, fault-specific checks aside.

    Returns the report's semantic job map for plan-specific assertions.
    """
    if result.code < 0:
        fail(plan, f"coordinator died on signal {-result.code}", result)
    if result.code not in (0, 1, 2):
        fail(plan, f"undocumented exit code {result.code}", result)
    if result.report is None:
        fail(plan, f"no report was written to {result.report_path}",
             result)
    report = result.report
    if report.get("schema") != "pd-batch-report-v1":
        fail(plan, f"unexpected schema {report.get('schema')!r}")
    if "resilience" not in report:
        fail(plan, "report is missing the resilience block")
    names = sorted(j["name"] for j in report["jobs"])
    base_names = sorted(baseline.keys())
    if names != base_names:
        fail(plan, f"job set drifted: {names} != {base_names}")
    for name, job in semantic_jobs(report).items():
        if not job["ok"]:
            continue
        base = dict(baseline[name])
        # Verification effort may legitimately differ under budget
        # faults; outcome fields may not.
        if plan.startswith(("verify-", "soak-", "proof-")):
            job.pop("verification", None)
            base.pop("verification", None)
        if job != base:
            fail(plan, f"ok job {name!r} drifted from the baseline:\n"
                       f"  baseline: {json.dumps(base, sort_keys=True)}\n"
                       f"  faulted:  {json.dumps(job, sort_keys=True)}")
    if store is not None and os.path.exists(store):
        code = cache_info_code(cli, store)
        if code not in (0, 1):
            fail(plan, f"cache-info crashed on the flushed store "
                       f"(exit {code})")
    return semantic_jobs(report)


def expect(plan, condition, message, result=None):
    if not condition:
        fail(plan, message, result)


def resilience(result):
    return result.report["resilience"]


def failed_jobs(result):
    return {j["name"]: j["error"] for j in result.report["jobs"]
            if not j["ok"]}


def run_matrix(cli, workdir, baseline):
    # --- targeted worker crash: blast radius is exactly one job -------
    plan = "targeted-crash"
    r = run_batch(cli, workdir, plan,
                  env_extra={"PD_SHARD_TEST_CRASH_JOB": "counter8"},
                  args=("--shards", "2"))
    check_generic(plan, r, baseline, cli)
    expect(plan, r.code == 2, f"expected exit 2, got {r.code}", r)
    bad = failed_jobs(r)
    expect(plan, set(bad) == {"counter8"},
           f"only counter8 may fail, got {sorted(bad)}", r)
    expect(plan, "retried once" in bad["counter8"],
           f"error must name the spent retry budget: {bad['counter8']!r}")
    expect(plan, resilience(r)["worker_crashes"] >= 2,
           "both attempts crash, so worker_crashes >= 2", r)
    expect(plan, resilience(r)["retries"] >= 1,
           "the retry must be counted", r)
    print(f"  {plan}: ok (exit 2, counter8 contained, "
          f"{resilience(r)['worker_crashes']} crashes)")

    # --- one spawn failure: absorbed, no job notices ------------------
    plan = "spawn-blip"
    r = run_batch(cli, workdir, plan, faults="shard.worker.spawn:n1",
                  args=("--shards", "2"))
    check_generic(plan, r, baseline, cli)
    expect(plan, r.code == 0, f"expected exit 0, got {r.code}", r)
    expect(plan, not failed_jobs(r), "no job may fail", r)
    expect(plan, resilience(r)["spawn_failures"] >= 1,
           "the spawn failure must be counted", r)
    expect(plan, resilience(r)["worker_crashes"] == 0,
           "a spawn failure is not a crash", r)
    print(f"  {plan}: ok (exit 0, "
          f"{resilience(r)['spawn_failures']} spawn failures absorbed)")

    # --- total pool collapse: every job falls back in-process ---------
    plan = "pool-collapse"
    r = run_batch(cli, workdir, plan, faults="shard.worker.spawn:e1",
                  args=("--shards", "2"))
    check_generic(plan, r, baseline, cli)
    expect(plan, r.code == 0, f"expected exit 0, got {r.code}", r)
    expect(plan, not failed_jobs(r), "fallback must succeed", r)
    expect(plan, resilience(r)["fallback_jobs"] == len(BENCHES),
           f"all {len(BENCHES)} jobs must fall back, got "
           f"{resilience(r)['fallback_jobs']}", r)
    for job in r.report["jobs"]:
        expect(plan, job.get("shard_fallback") is True
               and job.get("shard", 0) < 0,
               f"{job['name']} must carry shard.fallback provenance", r)
    print(f"  {plan}: ok (exit 0, {len(BENCHES)} jobs in-process)")

    # --- corrupt wire frame: worker killed, job retried, all recover --
    plan = "wire-corrupt"
    r = run_batch(cli, workdir, plan, faults="shard.wire.corrupt:n2",
                  args=("--shards", "1"))
    check_generic(plan, r, baseline, cli)
    expect(plan, r.code == 0, f"expected exit 0, got {r.code}", r)
    expect(plan, not failed_jobs(r),
           "retries must recover every corrupted frame", r)
    expect(plan, resilience(r)["worker_crashes"] >= 1,
           "a protocol violation counts as a crash", r)
    expect(plan, resilience(r)["retries"] >= 1,
           "the recovery retry must be counted", r)
    print(f"  {plan}: ok (exit 0, {resilience(r)['retries']} retries)")

    # --- clean per-job failure: partial exit, no collateral -----------
    plan = "clean-job-fail"
    r = run_batch(cli, workdir, plan, faults="engine.job.fail:n2",
                  args=("--jobs", "1"))
    check_generic(plan, r, baseline, cli)
    expect(plan, r.code == 2, f"expected exit 2, got {r.code}", r)
    bad = failed_jobs(r)
    expect(plan, len(bad) == 1, f"exactly one job may fail: {bad}", r)
    expect(plan, all("injected fault" in e for e in bad.values()),
           f"the error must name the injection: {bad}", r)
    print(f"  {plan}: ok (exit 2, {sorted(bad)[0]} failed cleanly)")

    # --- flush hits ENOSPC: fatal exit, report intact, and the store
    # is either absent or fully valid (the engine destructor retries
    # the flush as a safety net, which heals a transient ENOSPC) — but
    # never torn -------------------------------------------------------
    plan = "persist-enospc"
    store = os.path.join(workdir, "enospc.pdc")
    r = run_batch(cli, workdir, plan, faults="persist.save.enospc:n1",
                  args=("--shards", "2", "--cache-file", store))
    check_generic(plan, r, baseline, cli)
    expect(plan, r.code == 1, f"expected fatal exit 1, got {r.code}", r)
    expect(plan, not failed_jobs(r),
           "the jobs themselves all succeeded", r)
    expect(plan, "cache flush failed" in r.output,
           "the flush failure must be reported", r)
    expect(plan,
           not os.path.exists(store) or cache_info_code(cli, store) == 0,
           "a failed save may leave no store, or the destructor's "
           "retry a fully valid one — never a torn file", r)
    print(f"  {plan}: ok (exit 1, report intact, store absent or valid)")

    # --- short write tears the store: salvage + warm rerun heals it ---
    plan = "persist-torn"
    store = os.path.join(workdir, "torn.pdc")
    r = run_batch(cli, workdir, plan,
                  faults="persist.save.short_write:n1",
                  args=("--shards", "2", "--cache-file", store))
    check_generic(plan, r, baseline, cli, store=store)
    expect(plan, os.path.exists(store),
           "the short write still renames a (torn) store in", r)
    rerun = run_batch(cli, workdir, plan + "-rerun",
                      args=("--shards", "2", "--cache-file", store))
    check_generic(plan + "-rerun", rerun, baseline, cli, store=store)
    expect(plan, rerun.code == 0,
           f"warm rerun over the torn store must succeed, got "
           f"{rerun.code}", rerun)
    expect(plan, not failed_jobs(rerun), "rerun jobs must all pass",
           rerun)
    expect(plan, cache_info_code(cli, store) == 0,
           "the rerun's flush must leave a fully valid store", rerun)
    print(f"  {plan}: ok (torn store salvaged, rerun healed it)")

    # --- SAT verify budget starved: honest unknown, never a wrong
    # verdict, never a dead engine --------------------------------------
    plan = "verify-budget"
    r = run_batch(cli, workdir, plan, faults="verify.sat.budget:n1",
                  args=("--verify-threads", "1"))
    check_generic(plan, r, baseline, cli)
    expect(plan, r.code == 0, f"expected exit 0, got {r.code}", r)
    expect(plan, not failed_jobs(r),
           "a starved verify budget must not fail the job", r)
    print(f"  {plan}: ok (exit 0, starved verify stayed honest)")

    # --- wedged worker vs wall budget: the hang is contained ----------
    plan = "hang-wall-budget"
    r = run_batch(cli, workdir, plan,
                  env_extra={"PD_SHARD_TEST_HANG_JOB": "counter8"},
                  args=("--shards", "2", "--shard-wall-ms", "2000",
                        "--shard-drain-ms", "2000"))
    check_generic(plan, r, baseline, cli)
    expect(plan, r.code == 2, f"expected exit 2, got {r.code}", r)
    bad = failed_jobs(r)
    expect(plan, set(bad) == {"counter8"},
           f"only the wedged job may fail, got {sorted(bad)}", r)
    expect(plan, "wall budget" in bad["counter8"],
           f"error must name the wall budget: {bad['counter8']!r}")
    print(f"  {plan}: ok (exit 2, wedge contained by the wall budget)")

    # --- SAT proof store torn in flight: salvage, honest re-solve,
    # rerun heals --------------------------------------------------------
    plan = "proof-torn"
    pstore = os.path.join(workdir, "proofs.pdp")
    r = run_batch(cli, workdir, plan + "-cold",
                  args=("--verify-threads", "1",
                        "--proof-cache-file", pstore))
    check_generic(plan + "-cold", r, baseline, cli)
    expect(plan, r.code == 0, f"cold run expected exit 0, got {r.code}", r)
    expect(plan, os.path.exists(pstore),
           "the cold run must flush a proof store", r)
    # The warm load sees a flipped byte: the damaged tail is dropped
    # with honest accounting, surviving proofs replay, the missing ones
    # are re-solved — never a wrong verdict, never a dead batch.
    r = run_batch(cli, workdir, plan, faults="persist.proof.load.flip:n1",
                  args=("--verify-threads", "1",
                        "--proof-cache-file", pstore))
    check_generic(plan, r, baseline, cli)
    expect(plan, r.code == 0, f"expected exit 0, got {r.code}", r)
    expect(plan, not failed_jobs(r),
           "a torn proof store must not fail any job", r)
    ps = r.report.get("proof_store") or {}
    expect(plan, ps.get("load_status") in ("salvaged", "corrupt"),
           f"the flip must be detected, got {ps.get('load_status')!r}", r)
    # The faulted run's flush rewrote the store from scratch; a
    # fault-free rerun must load it clean and replay every proof.
    r = run_batch(cli, workdir, plan + "-rerun",
                  args=("--verify-threads", "1",
                        "--proof-cache-file", pstore))
    check_generic(plan + "-rerun", r, baseline, cli)
    expect(plan, r.code == 0,
           f"rerun expected exit 0, got {r.code}", r)
    ps = r.report.get("proof_store") or {}
    expect(plan, ps.get("load_status") == "loaded",
           f"the rerun must heal the store, got "
           f"{ps.get('load_status')!r}", r)
    sources = [j["verification"].get("sat", {}).get("proof_source")
               for j in r.report["jobs"]]
    expect(plan, sources and all(s == "cache" for s in sources),
           f"the healed store must replay every proof, got {sources}", r)
    print(f"  {plan}: ok (flip salvaged, rerun healed, "
          f"{len(sources)} proofs replayed)")


def run_socket_plans(cli, workdir, baseline):
    """Socket-transport liveness plans (wire v6); always run, whatever
    --transport the main matrix uses."""
    # --- frozen worker: only the heartbeat deadline can reap it -------
    # SIGSTOP freezes the whole worker process, pump thread included, so
    # neither the wall budget (no overrunning job timer here) nor pipe
    # EOF fires — the kill must come from --shard-heartbeat-ms. The
    # retry lands on another worker, which freezes on the same job name,
    # so the final verdict is the contained retried-once failure.
    plan = "socket-heartbeat-stall"
    r = run_batch(cli, workdir, plan,
                  env_extra={"PD_SHARD_TEST_STALL_JOB": "counter8"},
                  args=("--shards", "2", "--shard-transport", "socket",
                        "--shard-heartbeat-ms", "500"))
    check_generic(plan, r, baseline, cli)
    expect(plan, r.code == 2, f"expected exit 2, got {r.code}", r)
    bad = failed_jobs(r)
    expect(plan, set(bad) == {"counter8"},
           f"only the frozen job may fail, got {sorted(bad)}", r)
    expect(plan, "heartbeat deadline" in bad["counter8"],
           f"error must name the heartbeat deadline: {bad['counter8']!r}")
    expect(plan, "retried once" in bad["counter8"],
           f"error must name the spent retry: {bad['counter8']!r}")
    res = resilience(r)
    expect(plan, res["heartbeat_misses"] >= 1,
           "the missed deadline must be counted", r)
    expect(plan, res["deadline_kills"] >= 1,
           "the liveness kill must be counted", r)
    expect(plan, res["retries"] >= 1,
           "the retry-on-another-worker must be counted", r)
    print(f"  {plan}: ok (exit 2, {res['deadline_kills']} deadline kills, "
          f"job retried on another worker)")

    # --- connection never establishes: spawn-failure accounting -------
    plan = "socket-accept-fault"
    r = run_batch(cli, workdir, plan, faults="shard.sock.accept:n1",
                  args=("--shards", "2", "--shard-transport", "socket"))
    check_generic(plan, r, baseline, cli)
    expect(plan, r.code == 0, f"expected exit 0, got {r.code}", r)
    expect(plan, not failed_jobs(r),
           "a failed establishment must cost no job", r)
    res = resilience(r)
    expect(plan, res["spawn_failures"] >= 1,
           "the failed connect must book a spawn failure", r)
    expect(plan, res["worker_crashes"] == 0,
           "a failed establishment is not a crash", r)
    expect(plan, res["retries"] == 0,
           "no retry budget may be charged", r)
    print(f"  {plan}: ok (exit 0, "
          f"{res['spawn_failures']} spawn failures, no crash charged)")


def run_soak(cli, workdir, baseline, iterations, seed):
    rng = random.Random(seed)
    for i in range(iterations):
        plan = f"soak-{i}"
        sites = rng.sample(SOAK_SITES, rng.randint(1, 3))
        faults = ",".join(
            f"{s}:p{rng.choice((0.1, 0.2, 0.3)):.1f}@{rng.randrange(2**31)}"
            for s in sites)
        store = os.path.join(workdir, f"{plan}.pdc")
        r = run_batch(cli, workdir, plan, faults=faults,
                      args=("--shards", "2", "--shard-retries", "2",
                            "--cache-file", store))
        check_generic(plan, r, baseline, cli, store=store)
        # Cache soundness: whatever the faulted run persisted, a
        # fault-free warm rerun must reproduce the baseline exactly.
        rerun = run_batch(cli, workdir, plan + "-rerun",
                          args=("--shards", "2", "--cache-file", store))
        check_generic(plan + "-rerun", rerun, baseline, cli, store=store)
        expect(plan, rerun.code == 0 and not failed_jobs(rerun),
               f"fault-free rerun after plan {faults!r} must fully "
               f"succeed (exit {rerun.code})", rerun)
        print(f"  {plan}: ok ({faults}; exit {r.code}, rerun clean)")


def main():
    ap = argparse.ArgumentParser(
        description="chaos gate for pd_cli batch fault tolerance")
    ap.add_argument("--cli", required=True,
                    help="path to the pd_cli binary under test")
    ap.add_argument("--workdir",
                    help="scratch dir (default: a fresh temp dir)")
    ap.add_argument("--transport", choices=("pipe", "socket"),
                    default="pipe",
                    help="--shard-transport for every sharded plan "
                         "(the two socket liveness plans always run)")
    ap.add_argument("--soak", type=int, default=0, metavar="N",
                    help="extra randomized seeded-probabilistic plans")
    ap.add_argument("--seed", type=int, default=20260808,
                    help="soak PRNG seed (plans are deterministic per "
                         "seed)")
    ap.add_argument("--keep", action="store_true",
                    help="keep the scratch dir for post-mortems")
    opt = ap.parse_args()

    cli = os.path.abspath(opt.cli)
    if not os.access(cli, os.X_OK):
        sys.exit(f"--cli {opt.cli}: not an executable")

    global TRANSPORT
    TRANSPORT = opt.transport

    workdir = opt.workdir or tempfile.mkdtemp(prefix="pd-chaos-")
    os.makedirs(workdir, exist_ok=True)
    try:
        print(f"chaos gate: baseline batch ({', '.join(BENCHES)}) over "
              f"the {TRANSPORT} transport")
        base = run_batch(cli, workdir, "baseline",
                         args=("--shards", "2"))
        if base.code != 0 or base.report is None:
            fail("baseline", "fault-free baseline must pass", base)
        bad = failed_jobs(base)
        if bad:
            fail("baseline", f"baseline jobs failed: {bad}", base)
        baseline = semantic_jobs(base.report)

        run_matrix(cli, workdir, baseline)
        run_socket_plans(cli, workdir, baseline)
        if opt.soak > 0:
            print(f"chaos gate: soaking {opt.soak} randomized plans "
                  f"(seed {opt.seed})")
            run_soak(cli, workdir, baseline, opt.soak, opt.seed)
    finally:
        if not opt.keep and opt.workdir is None:
            shutil.rmtree(workdir, ignore_errors=True)

    soak_note = f" + {opt.soak} soak plans" if opt.soak else ""
    print(f"chaos gate OK: matrix of 9 fault plans over the {TRANSPORT} "
          f"transport + 2 socket liveness plans{soak_note} — coordinator "
          f"survived every one, blast radii held, stores stayed readable")


if __name__ == "__main__":
    main()
