#!/usr/bin/env python3
"""CI gate for documentation link integrity.

Usage: check_doc_links.py [repo_root]

Scans every Markdown file in the repository (skipping build trees and
.git) and verifies that each relative link target exists on disk:

  [text](src/sat/README.md)        -> file must exist
  [text](../../docs/cli.md#flags)  -> file must exist (anchor ignored)

External links (http://, https://, mailto:) and pure in-page anchors
(#section) are skipped — this gate is about keeping the repo navigable
offline, not about the public internet. GitHub web-app paths
(../../actions/... badge URLs, which are relative to the repository's
web URL, not its file tree) are likewise skipped. Any other link that
resolves outside the repository root is an error: docs must not depend
on files the checkout does not contain.

Exits non-zero listing every broken link.
"""
import os
import re
import sys

SKIP_DIRS = {".git", "build", ".ccache", "__pycache__"}

# [text](target) — non-greedy target, tolerates titles: (target "title")
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")
# GitHub-web-relative, not file-tree-relative (status badges).
WEB_APP_PREFIXES = ("../../actions/",)


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.lower().endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(md_path, root):
    """Returns a list of (line_number, target, reason) problems."""
    problems = []
    with open(md_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(EXTERNAL_PREFIXES):
                    continue
                if target.startswith(WEB_APP_PREFIXES):
                    continue
                if target.startswith("#"):
                    continue  # in-page anchor
                path_part = target.split("#", 1)[0]
                if not path_part:
                    continue
                resolved = os.path.realpath(
                    os.path.join(os.path.dirname(md_path), path_part))
                if os.path.commonpath([resolved, root]) != root:
                    problems.append((lineno, target, "escapes repo root"))
                elif not os.path.exists(resolved):
                    problems.append((lineno, target, "target does not exist"))
    return problems


def main():
    root = os.path.realpath(sys.argv[1] if len(sys.argv) > 1 else ".")
    total_files = 0
    total_links_broken = 0
    for md_path in sorted(markdown_files(root)):
        total_files += 1
        for lineno, target, reason in check_file(md_path, root):
            rel = os.path.relpath(md_path, root)
            print(f"{rel}:{lineno}: broken link ({target}): {reason}",
                  file=sys.stderr)
            total_links_broken += 1
    if total_links_broken:
        sys.exit(f"{total_links_broken} broken link(s) across "
                 f"{total_files} Markdown file(s)")
    print(f"doc-link gate OK: {total_files} Markdown files, all relative "
          f"links resolve")


if __name__ == "__main__":
    main()
