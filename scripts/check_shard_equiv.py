#!/usr/bin/env python3
"""CI gate for sharded-vs-single-process batch equivalence.

Usage: check_shard_equiv.py single_report.json sharded_report.json [more...]

Asserts, against pd-batch-report-v1 documents produced by running the
same `pd_cli batch ...` selection with and without --shards (any mix of
--shard-transport pipe/socket legs may follow the single-process
baseline):

  1. every run succeeded on every job;
  2. each sharded report really ran sharded (engine.shards >= 1, and
     every wire-eligible job carries a worker shard id >= 0);
  3. the semantic payload of every job — everything except timings, cache
     provenance, and the shard id — is byte-identical between the
     single-process baseline and every sharded leg, whatever transport
     carried the frames;
  4. a fault-free socket leg kept its liveness machinery silent:
     resilience.heartbeat_misses, deadline_kills and wire_poisons are 0
     (reconnects stay 0 too — nothing should have torn a connection).

Exits non-zero with a diagnostic on the first violation.
"""
import json
import sys

VOLATILE_JOB_FIELDS = ("timing", "cache", "shard", "shard_fallback")


def semantic_jobs(report):
    """Jobs with the volatile (timing / cache / shard) fields removed."""
    jobs = []
    for job in report["jobs"]:
        job = dict(job)
        for field in VOLATILE_JOB_FIELDS:
            job.pop(field, None)
        jobs.append(job)
    return jobs


def check_sharded_leg(single, sharded, sharded_path):
    shards = sharded.get("engine", {}).get("shards", 0)
    transport = sharded.get("engine", {}).get("shard_transport", "pipe")
    if shards < 1:
        sys.exit(f"{sharded_path}: engine.shards is {shards} — "
                 f"was --shards passed?")
    stay_local = [j["name"] for j in sharded["jobs"] if j.get("shard", -1) < 0]
    if stay_local:
        sys.exit(f"{sharded_path}: jobs ran in-process instead of in a "
                 f"worker: {stay_local}")

    single_sem = json.dumps(semantic_jobs(single), sort_keys=True)
    sharded_sem = json.dumps(semantic_jobs(sharded), sort_keys=True)
    if single_sem != sharded_sem:
        for a, b in zip(semantic_jobs(single), semantic_jobs(sharded)):
            if a != b:
                sys.exit(f"{sharded_path}: result drift on job "
                         f"{a['name']!r}:\n"
                         f"  single:  {json.dumps(a, sort_keys=True)}\n"
                         f"  sharded: {json.dumps(b, sort_keys=True)}")
        sys.exit(f"{sharded_path}: result drift: job lists differ in "
                 f"length or order")

    # A fault-free run must never exercise the degraded paths; on the
    # socket transport that specifically includes the wire-v6 liveness
    # machinery (a false-positive deadline kill would silently show up
    # here as a retried job long before it flaked a chaos plan).
    res = sharded.get("resilience", {})
    if not res.get("armed_faults"):
        for counter in ("heartbeat_misses", "deadline_kills", "wire_poisons",
                        "reconnects"):
            if res.get(counter, 0) != 0:
                sys.exit(f"{sharded_path}: fault-free {transport} run has "
                         f"resilience.{counter} = {res.get(counter)}")

    used = sorted({j["shard"] for j in sharded["jobs"]})
    return shards, transport, used


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    paths = sys.argv[1:]
    reports = []
    for path in paths:
        with open(path) as f:
            report = json.load(f)
        if report.get("schema") != "pd-batch-report-v1":
            sys.exit(f"{path}: unexpected schema {report.get('schema')!r}")
        for job in report["jobs"]:
            if not job["ok"]:
                sys.exit(f"{path}: job {job['name']!r} failed: "
                         f"{job['error']!r}")
        reports.append(report)

    single = reports[0]
    legs = []
    for report, path in zip(reports[1:], paths[1:]):
        shards, transport, used = check_sharded_leg(single, report, path)
        legs.append(f"{transport}×{shards} (workers used: {used})")

    # Probe-thread plumbing coverage: when a sharded run fanned its probe
    # sweeps out (--probe-threads through the pd-shard-wire job frames),
    # byte-identical semantics above proves the sweep's determinism held
    # across both the process and the thread fan-out.
    probe_threads = reports[1].get("engine", {}).get("probe_threads", 0)
    probe_note = (f", probe_threads={probe_threads} (deterministic sweep "
                  f"verified)" if probe_threads else "")
    print(f"shard-equivalence gate OK: {len(single['jobs'])} jobs, "
          f"{len(legs)} sharded leg(s) [{'; '.join(legs)}] byte-identical "
          f"to the single-process run{probe_note}")


if __name__ == "__main__":
    main()
