#!/usr/bin/env python3
"""CI gate for sharded-vs-single-process batch equivalence.

Usage: check_shard_equiv.py single_report.json sharded_report.json

Asserts, against two pd-batch-report-v1 documents produced by running the
same `pd_cli batch ...` selection with and without --shards:

  1. both runs succeeded on every job;
  2. the sharded report really ran sharded (engine.shards >= 1, and every
     wire-eligible job carries a worker shard id >= 0);
  3. the semantic payload of every job — everything except timings, cache
     provenance, and the shard id — is byte-identical between the two
     reports.

Exits non-zero with a diagnostic on the first violation.
"""
import json
import sys

VOLATILE_JOB_FIELDS = ("timing", "cache", "shard", "shard_fallback")


def semantic_jobs(report):
    """Jobs with the volatile (timing / cache / shard) fields removed."""
    jobs = []
    for job in report["jobs"]:
        job = dict(job)
        for field in VOLATILE_JOB_FIELDS:
            job.pop(field, None)
        jobs.append(job)
    return jobs


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    single_path, sharded_path = sys.argv[1], sys.argv[2]
    with open(single_path) as f:
        single = json.load(f)
    with open(sharded_path) as f:
        sharded = json.load(f)

    for report, path in ((single, single_path), (sharded, sharded_path)):
        if report.get("schema") != "pd-batch-report-v1":
            sys.exit(f"{path}: unexpected schema {report.get('schema')!r}")
        for job in report["jobs"]:
            if not job["ok"]:
                sys.exit(f"{path}: job {job['name']!r} failed: "
                         f"{job['error']!r}")

    shards = sharded.get("engine", {}).get("shards", 0)
    if shards < 1:
        sys.exit(f"{sharded_path}: engine.shards is {shards} — "
                 f"was --shards passed?")
    stay_local = [j["name"] for j in sharded["jobs"] if j.get("shard", -1) < 0]
    if stay_local:
        sys.exit(f"{sharded_path}: jobs ran in-process instead of in a "
                 f"worker: {stay_local}")

    single_sem = json.dumps(semantic_jobs(single), sort_keys=True)
    sharded_sem = json.dumps(semantic_jobs(sharded), sort_keys=True)
    if single_sem != sharded_sem:
        for a, b in zip(semantic_jobs(single), semantic_jobs(sharded)):
            if a != b:
                sys.exit(f"result drift on job {a['name']!r}:\n"
                         f"  single:  {json.dumps(a, sort_keys=True)}\n"
                         f"  sharded: {json.dumps(b, sort_keys=True)}")
        sys.exit("result drift: job lists differ in length or order")

    used = sorted({j["shard"] for j in sharded["jobs"]})
    # Probe-thread plumbing coverage: when the sharded run fanned its
    # probe sweeps out (--probe-threads through the pd-shard-wire v2 job
    # frames), byte-identical semantics above proves the sweep's
    # determinism held across both the process and the thread fan-out.
    probe_threads = sharded.get("engine", {}).get("probe_threads", 0)
    probe_note = (f", probe_threads={probe_threads} (deterministic sweep "
                  f"verified)" if probe_threads else "")
    print(f"shard-equivalence gate OK: {len(sharded['jobs'])} jobs across "
          f"{shards} shards (workers used: {used}), results byte-identical "
          f"to the single-process run{probe_note}")


if __name__ == "__main__":
    main()
