#!/usr/bin/env python3
"""CI gate for pd-trace artifacts.

Usage:
  check_trace.py trace.json report.json [--expect-workers N]
  check_trace.py --overhead baseline.json current.json [--tol X]

Trace mode asserts, against a Chrome trace-event file produced by
`pd_cli batch --trace-out` and the matching pd-batch-report-v1 document:

  1. the trace is well-formed: a traceEvents array of "M"/"X" events,
     every "X" carrying name/cat/ts/dur/pid/tid with ts,dur >= 0;
  2. every job phase (decompose, synth, optimize, map, sta, verify) that
     consumed time in the report appears as a span at least once;
  3. per job fingerprint, the job.* span durations agree with the
     report's timing.phases within 5% (they are emitted from the same
     clock reads, so real drift means a bug, not noise);
  4. with --expect-workers N: spans exist for the coordinator (pid 0)
     and for every worker pid 1..N, each with a process_name metadata
     record — i.e. the fleet merge actually happened.

Overhead mode compares two check_hotpath-style benchmark JSON files
(BENCH_hotpath.json baseline vs a tracing-disabled current run) and
fails if any shared metric regressed beyond --tol (default 4.0x, the
same noise tolerance CI applies to the hot-path gate itself).

Exits non-zero with a diagnostic on the first violation.
"""
import json
import sys

PHASES = ("decompose", "synth", "optimize", "map", "sta", "verify")


def fail(msg):
    sys.exit(f"check_trace: {msg}")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def check_wellformed(trace):
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")
    spans = []
    names = {}  # pid -> process name
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph == "M":
            if e.get("name") == "process_name":
                names[e["pid"]] = e["args"]["name"]
            continue
        if ph != "X":
            fail(f"event {i}: unexpected ph {ph!r}")
        for key in ("name", "cat", "ts", "dur", "pid", "tid"):
            if key not in e:
                fail(f"event {i}: missing {key!r}")
        if e["ts"] < 0 or e["dur"] < 0:
            fail(f"event {i}: negative ts/dur")
        spans.append(e)
    if not spans:
        fail("trace holds no spans")
    return spans, names


def check_phase_sums(spans, report, tol=0.05):
    """Per job, job.<phase> span durations vs timing.phases, within 5%."""
    # Group job.* spans by (pid, fp): one fingerprint = one job execution.
    by_job = {}
    for s in spans:
        if not s["name"].startswith("job."):
            continue
        fp = s.get("args", {}).get("fp")
        if fp is None:
            continue
        phase = s["name"][len("job."):]
        by_job.setdefault((s["pid"], fp), {}).setdefault(phase, 0.0)
        by_job[(s["pid"], fp)][phase] += s["dur"] / 1000.0  # µs → ms
    if not by_job:
        fail("no job.* spans with fingerprints in the trace")

    # Match report jobs to traced jobs by multiset of phase vectors:
    # fingerprints are not in the report, so compare each computed
    # (cache-miss) job's phase block against some traced job.
    computed = [j for j in report["jobs"]
                if j["ok"] and not j["cache"]["hit"]]
    traced = list(by_job.values())
    for job in computed:
        phases = job["timing"]["phases"]
        best = None
        for t in traced:
            ok = True
            for p in PHASES:
                want = phases[f"{p}_ms"]
                got = t.get(p, 0.0)
                if want > 1.0 and abs(got - want) > tol * want:
                    ok = False
                    break
            if ok:
                best = t
                break
        if best is None:
            fail(f"job {job['name']!r}: no traced job matches its "
                 f"timing.phases within {tol:.0%} "
                 f"(report phases: { {p: phases[f'{p}_ms'] for p in PHASES} })")
        traced.remove(best)
        for p in PHASES:
            if phases[f"{p}_ms"] > 1.0 and p not in best:
                fail(f"job {job['name']!r}: phase {p} consumed "
                     f"{phases[f'{p}_ms']:.2f} ms but has no span")
    print(f"check_trace: {len(computed)} computed jobs matched to traced "
          f"phase sets within {tol:.0%}")


def check_workers(spans, names, expect):
    want = set(range(expect + 1))  # 0 = coordinator
    have = {s["pid"] for s in spans}
    missing = want - have
    if missing:
        fail(f"no spans for pids {sorted(missing)} "
             f"(expected coordinator + {expect} workers; pids seen: "
             f"{sorted(have)})")
    unnamed = want - set(names)
    if unnamed:
        fail(f"pids {sorted(unnamed)} have no process_name metadata")
    print(f"check_trace: fleet trace has coordinator + workers "
          f"{sorted(p for p in have if p > 0)}")


def run_trace_mode(argv):
    expect_workers = 0
    args = []
    it = iter(argv)
    for a in it:
        if a == "--expect-workers":
            expect_workers = int(next(it))
        else:
            args.append(a)
    if len(args) != 2:
        sys.exit(__doc__)
    trace = load(args[0])
    report = load(args[1])
    spans, names = check_wellformed(trace)
    check_phase_sums(spans, report)
    if expect_workers:
        check_workers(spans, names, expect_workers)
    print(f"check_trace: OK ({len(spans)} spans)")


def run_overhead_mode(argv):
    tol = 4.0
    args = []
    it = iter(argv)
    for a in it:
        if a == "--tol":
            tol = float(next(it))
        else:
            args.append(a)
    if len(args) != 2:
        sys.exit(__doc__)
    baseline = load(args[0])
    current = load(args[1])
    base_metrics = baseline.get("metrics", baseline)
    cur_metrics = current.get("metrics", current)
    shared = set(base_metrics) & set(cur_metrics)
    if not shared:
        fail("no shared metrics between baseline and current")
    for name in sorted(shared):
        base = base_metrics[name]
        cur = cur_metrics[name]
        if not isinstance(base, (int, float)) or base <= 0:
            continue
        if cur > tol * base:
            fail(f"metric {name!r}: {cur} vs baseline {base} "
                 f"(> {tol}x tolerance) — tracing-disabled overhead")
    print(f"check_trace: overhead OK ({len(shared)} metrics within "
          f"{tol}x of baseline)")


def main():
    argv = sys.argv[1:]
    if not argv:
        sys.exit(__doc__)
    if argv[0] == "--overhead":
        run_overhead_mode(argv[1:])
    else:
        run_trace_mode(argv)


if __name__ == "__main__":
    main()
