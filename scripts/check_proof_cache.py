#!/usr/bin/env python3
"""CI gate for the persistent SAT proof-cache round trip.

Usage: check_proof_cache.py cold_report.json warm_report.json

Asserts, against two pd-batch-report-v1 documents produced by running
the same `pd_cli batch --verify-threads N --proof-cache-file ...`
command twice (cold, then warm over the flushed store):

  1. the warm run actually loaded the proof store
     (proof_store.load_status == "loaded", entries > 0);
  2. every SAT-certified job in the warm report replayed its refutation
     (verification.sat.proof_source == "cache") — and there was at
     least one such job, so the gate cannot pass vacuously;
  3. the warm run did near-zero solver work: the verify.sat.proof.miss
     counter is 0 and the verify.sat.{conflicts,propagations} work
     counters are 0 — replayed statistics are the original solve's and
     must never leak into this process's work accounting;
  4. the verdicts are byte-identical: every job's semantic payload —
     everything except timings, cache provenance, and the proof_source
     provenance marker itself — matches the cold report exactly.

Exits non-zero with a diagnostic on the first violation.
"""
import json
import sys


def semantic_jobs(report):
    """Jobs with volatile / provenance fields removed.

    proof_source is provenance, not payload: "computed" cold vs "cache"
    warm is the expected difference, while everything else in the sat
    block (the verdict and the original solve's statistics) must match.
    """
    jobs = []
    for job in report["jobs"]:
        job = json.loads(json.dumps(job))  # deep copy
        job.pop("timing", None)
        job.pop("cache", None)
        sat = job.get("verification", {}).get("sat")
        if sat is not None:
            sat.pop("proof_source", None)
        jobs.append(job)
    return jobs


def sat_jobs(report):
    return [j for j in report["jobs"] if "sat" in j.get("verification", {})]


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    cold_path, warm_path = sys.argv[1], sys.argv[2]
    with open(cold_path) as f:
        cold = json.load(f)
    with open(warm_path) as f:
        warm = json.load(f)

    for report, path in ((cold, cold_path), (warm, warm_path)):
        if report.get("schema") != "pd-batch-report-v1":
            sys.exit(f"{path}: unexpected schema {report.get('schema')!r}")
        for job in report["jobs"]:
            if not job["ok"]:
                sys.exit(f"{path}: job {job['name']!r} failed: "
                         f"{job['error']!r}")

    store = warm.get("proof_store")
    if not store:
        sys.exit(f"{warm_path}: no proof_store section — was "
                 f"--proof-cache-file set?")
    if store["load_status"] != "loaded":
        sys.exit(f"{warm_path}: proof store not loaded on the second run: "
                 f"{store['load_status']} ({store['load_detail']!r})")
    if store["loaded_entries"] == 0:
        sys.exit(f"{warm_path}: proof store loaded but contained 0 proofs")

    certified = sat_jobs(warm)
    if not certified:
        sys.exit(f"{warm_path}: no SAT-certified jobs — was "
                 f"--verify-threads set?")
    recomputed = [j["name"] for j in certified
                  if j["verification"]["sat"]["proof_source"] != "cache"]
    if recomputed:
        sys.exit(f"{warm_path}: jobs re-solved instead of replaying their "
                 f"proofs: {recomputed}")

    counters = warm.get("observability", {}).get("counters", {})
    misses = counters.get("verify.sat.proof.miss", 0)
    if misses:
        sys.exit(f"{warm_path}: {misses} proof-cache misses on the warm "
                 f"run — the store did not cover the batch")
    for work in ("verify.sat.conflicts", "verify.sat.propagations"):
        if counters.get(work, 0):
            sys.exit(f"{warm_path}: {work} = {counters[work]} on the warm "
                     f"run — replayed proofs must not count as solver work")

    cold_sem = json.dumps(semantic_jobs(cold), sort_keys=True)
    warm_sem = json.dumps(semantic_jobs(warm), sort_keys=True)
    if cold_sem != warm_sem:
        for a, b in zip(semantic_jobs(cold), semantic_jobs(warm)):
            if a != b:
                sys.exit(f"verdict drift on job {a['name']!r}:\n"
                         f"  cold: {json.dumps(a, sort_keys=True)}\n"
                         f"  warm: {json.dumps(b, sort_keys=True)}")
        sys.exit("verdict drift: job lists differ in length or order")

    hits = counters.get("verify.sat.proof.hit", 0)
    print(f"proof-cache gate OK: {len(certified)} SAT-certified jobs all "
          f"replayed from the proof store ({store['loaded_entries']} proofs "
          f"loaded, {hits} hits, 0 misses), verdicts byte-identical")


if __name__ == "__main__":
    main()
