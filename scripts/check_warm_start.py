#!/usr/bin/env python3
"""CI gate for the persistent-cache warm-start round trip.

Usage: check_warm_start.py cold_report.json warm_report.json

Asserts, against two pd-batch-report-v1 documents produced by running the
same `pd_cli batch --cache-file ...` command twice:

  1. every job in the warm report was served from the cache
     (cache.source is "disk" or "memory" — nothing recomputed);
  2. the warm run actually loaded the store (persist.load_status);
  3. the semantic payload of every job — everything except timings and
     cache provenance — is byte-identical between the two reports.

Exits non-zero with a diagnostic on the first violation.
"""
import json
import sys


def semantic_jobs(report):
    """Jobs with the volatile (timing / cache-provenance) fields removed."""
    jobs = []
    for job in report["jobs"]:
        job = dict(job)
        job.pop("timing", None)
        job.pop("cache", None)
        jobs.append(job)
    return jobs


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    cold_path, warm_path = sys.argv[1], sys.argv[2]
    with open(cold_path) as f:
        cold = json.load(f)
    with open(warm_path) as f:
        warm = json.load(f)

    for report, path in ((cold, cold_path), (warm, warm_path)):
        if report.get("schema") != "pd-batch-report-v1":
            sys.exit(f"{path}: unexpected schema {report.get('schema')!r}")
        for job in report["jobs"]:
            if not job["ok"]:
                sys.exit(f"{path}: job {job['name']!r} failed: "
                         f"{job['error']!r}")

    persist = warm.get("persist")
    if not persist:
        sys.exit(f"{warm_path}: no persist section — was --cache-file set?")
    if persist["load_status"] != "loaded":
        sys.exit(f"{warm_path}: store not loaded on the second run: "
                 f"{persist['load_status']} ({persist['load_detail']!r})")
    if persist["loaded_entries"] == 0:
        sys.exit(f"{warm_path}: store loaded but contained 0 entries")

    bad = [j["name"] for j in warm["jobs"]
           if j["cache"]["source"] not in ("disk", "memory")]
    if bad:
        sys.exit(f"{warm_path}: jobs recomputed instead of served from the "
                 f"cache: {bad}")

    cold_sem = json.dumps(semantic_jobs(cold), sort_keys=True)
    warm_sem = json.dumps(semantic_jobs(warm), sort_keys=True)
    if cold_sem != warm_sem:
        for a, b in zip(semantic_jobs(cold), semantic_jobs(warm)):
            if a != b:
                sys.exit(f"result drift on job {a['name']!r}:\n"
                         f"  cold: {json.dumps(a, sort_keys=True)}\n"
                         f"  warm: {json.dumps(b, sort_keys=True)}")
        sys.exit("result drift: job lists differ in length or order")

    n = len(warm["jobs"])
    sources = [j["cache"]["source"] for j in warm["jobs"]]
    print(f"warm-start gate OK: {n} jobs, all served from cache "
          f"({sources.count('disk')} disk, {sources.count('memory')} "
          f"memory), results byte-identical")


if __name__ == "__main__":
    main()
